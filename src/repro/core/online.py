"""Online (per-request) classification — the production deployment path.

The batch pipeline in :mod:`repro.core.training` precomputes per-access
verdicts because features are pure request-time functions.  A production
cache server cannot batch: it must build the feature vector *at miss time*
from running state and invoke the tree (the paper measures
``t_classify = 0.4 µs`` for its C implementation).

:class:`OnlineFeatureTracker` maintains that running state — last-access
time per object, a trailing one-minute request counter — and reproduces the
offline feature matrix *exactly* (this equivalence is tested), which proves
the offline evaluation does not leak future information.

Hot path: the tracker executes a *precomputed feature plan*.  Catalog-
derived columns (owner stats, photo type/size, upload time) are gathered
into per-object Python lists once at construction; dynamic features
(recency, age, hour, trailing-minute count) are computed inline from plain
floats; :meth:`OnlineFeatureTracker.features_into` writes the vector into a
caller-owned buffer, so the steady state allocates nothing and never
touches a dict of bound methods or a NumPy scalar.

:class:`OnlineClassifierAdmission` plugs the tracker + a fitted model +
the history table into the simulator.  By default it classifies through
:func:`repro.ml.fastpath.fast_predictor` — the code-generated tree — and
records per-decision wall time so the Eq.-6 ``t_classify`` term can be
measured rather than assumed; ``use_fast_path=False`` keeps the reference
``model.predict`` path (same verdicts, used by the parity harness), and
``timing_capacity=0`` disables timing entirely for pure-throughput runs.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.cache.base import AdmissionPolicy
from repro.core.features import PAPER_FEATURE_NAMES
from repro.core.history_table import HistoryTable
from repro.core.labeling import ONE_TIME
from repro.ml.fastpath import fast_predictor
from repro.obs.registry import Reservoir
from repro.trace.records import Trace

__all__ = ["OnlineFeatureTracker", "OnlineClassifierAdmission"]

_TEN_MINUTES = 600.0
_MAX_TIME_BUCKETS = 90 * 144
_MAX_BUCKET = float(_MAX_TIME_BUCKETS - 1)

# Feature plan op-codes (slots in the §3.2 feature set).
_F_OWNER_AVG_VIEWS = 0
_F_OWNER_ACTIVE_FRIENDS = 1
_F_PHOTO_TYPE = 2
_F_PHOTO_SIZE = 3
_F_PHOTO_AGE = 4
_F_RECENCY = 5
_F_ACCESS_HOUR = 6
_F_TERMINAL = 7
_F_RECENT_REQUESTS = 8

_FEATURE_CODES = {
    "owner_avg_views": _F_OWNER_AVG_VIEWS,
    "owner_active_friends": _F_OWNER_ACTIVE_FRIENDS,
    "photo_type": _F_PHOTO_TYPE,
    "photo_size": _F_PHOTO_SIZE,
    "photo_age": _F_PHOTO_AGE,
    "recency": _F_RECENCY,
    "access_hour": _F_ACCESS_HOUR,
    "terminal": _F_TERMINAL,
    "recent_requests": _F_RECENT_REQUESTS,
}


class OnlineFeatureTracker:
    """Incrementally compute the §3.2 features, one request at a time.

    ``observe(index)`` must be called for *every* request in trace order
    (hits included — recency depends on them); ``features(index)`` /
    ``features_into(index, out)`` return the feature vector for the
    current request *before* it is recorded.

    Construction precomputes the feature *plan*: per-object catalog
    columns are materialised as plain Python lists (a list index is ~10×
    cheaper than a NumPy scalar extraction), and each configured feature
    becomes one ``(slot, code)`` pair dispatched through a flat
    ``if``/``elif`` chain — no dict of bound methods, no per-request
    ndarray allocation.
    """

    def __init__(self, trace: Trace, feature_names=PAPER_FEATURE_NAMES):
        self.trace = trace
        self.feature_names = tuple(feature_names)
        unknown = set(self.feature_names) - set(_FEATURE_CODES)
        if unknown:
            raise ValueError(f"unknown features: {sorted(unknown)}")
        self._plan = tuple(
            (slot, _FEATURE_CODES[name])
            for slot, name in enumerate(self.feature_names)
        )

        # Per-access columns (trace order): float64 arrays feed the columnar
        # batch path; their ``tolist()`` twins feed the scalar hot path
        # (a list index is ~10× cheaper than a NumPy scalar extraction).
        self._np_ts = np.ascontiguousarray(trace.timestamps, dtype=np.float64)
        self._np_oids = np.ascontiguousarray(trace.object_ids, dtype=np.int64)
        self._np_terminal = trace.accesses["terminal"].astype(np.float64)
        self._ts_list = self._np_ts.tolist()
        self._oid_list = self._np_oids.tolist()
        self._terminal_list = self._np_terminal.tolist()

        # Per-object catalog columns, gathered once (indexed by oid).
        catalog = trace.catalog
        self._np_owner_avg_views = trace.owner_avg_views[
            catalog["owner_id"]
        ].astype(np.float64)
        self._np_owner_active_friends = trace.owner_active_friends[
            catalog["owner_id"]
        ].astype(np.float64)
        self._np_photo_type = catalog["photo_type"].astype(np.float64)
        self._np_size = catalog["size"].astype(np.float64)
        self._np_upload = catalog["upload_time"].astype(np.float64)
        self._col_owner_avg_views = self._np_owner_avg_views.tolist()
        self._col_owner_active_friends = self._np_owner_active_friends.tolist()
        self._col_photo_type = self._np_photo_type.tolist()
        self._col_size = self._np_size.tolist()
        self._col_upload = self._np_upload.tolist()

        self._has_recent = any(
            code == _F_RECENT_REQUESTS for _, code in self._plan
        )
        # Scratch row for features(): reused across calls, copied on return.
        self._scratch = [0.0] * len(self.feature_names)

        # Running state.
        self._last_access: dict[int, float] = {}
        self._recent: deque[float] = deque()

    # -------------------------------------------------------------- public

    def features_into(self, index: int, out):
        """Write the feature vector for ``index`` into ``out`` and return it.

        ``out`` is any mutable indexable of length ``len(feature_names)``
        (a plain list is fastest); nothing is allocated.  The request must
        not yet have been ``observe``-d.
        """
        oid = self._oid_list[index]
        t = self._ts_list[index]
        for slot, code in self._plan:
            if code == _F_RECENCY:
                last = self._last_access.get(oid)
                if last is None:
                    last = self._col_upload[oid]
                d = t - last
                b = float(int(d // _TEN_MINUTES)) if d > 0.0 else 0.0
                out[slot] = b if b < _MAX_BUCKET else _MAX_BUCKET
            elif code == _F_PHOTO_AGE:
                d = t - self._col_upload[oid]
                b = float(int(d // _TEN_MINUTES)) if d > 0.0 else 0.0
                out[slot] = b if b < _MAX_BUCKET else _MAX_BUCKET
            elif code == _F_OWNER_AVG_VIEWS:
                out[slot] = self._col_owner_avg_views[oid]
            elif code == _F_ACCESS_HOUR:
                out[slot] = float(int((t % 86400.0) // 3600.0))
            elif code == _F_PHOTO_TYPE:
                out[slot] = self._col_photo_type[oid]
            elif code == _F_PHOTO_SIZE:
                out[slot] = self._col_size[oid]
            elif code == _F_OWNER_ACTIVE_FRIENDS:
                out[slot] = self._col_owner_active_friends[oid]
            elif code == _F_TERMINAL:
                out[slot] = self._terminal_list[index]
            else:  # _F_RECENT_REQUESTS
                recent = self._recent
                cutoff = t - 60.0
                while recent and recent[0] < cutoff:
                    recent.popleft()
                out[slot] = float(len(recent))
        return out

    def features(self, index: int) -> np.ndarray:
        """Feature vector for the request at ``index`` (not yet observed).

        Computed through a reused scratch row (no per-call list build); the
        returned array is a fresh copy, never a view of the scratch.
        """
        return np.array(self.features_into(index, self._scratch))

    def features_into_batch(self, indices, out: np.ndarray) -> np.ndarray:
        """Columnar twin of the per-row ``features_into`` + ``observe`` loop.

        Fills ``out[:n]`` (a 2-D float64 matrix with at least ``n`` rows)
        with one feature row per position and advances the running state,
        producing *bit-identical* rows and end state to ``n`` sequential
        ``features_into(i, out[row]); observe(i)`` calls (property-tested).

        ``indices`` must be an ascending run of trace positions none of
        which has been observed yet — exactly the contiguous micro-batch
        the serving layer's sequencer hands :meth:`CacheNode.process_batch`.
        Dynamic features stay exact because trace timestamps are validated
        non-decreasing: intra-batch recency falls out of a stable sort over
        object ids, and the trailing-minute counter out of two
        ``searchsorted`` calls against the pre-batch window + the batch
        itself.
        """
        n = len(indices)
        rows = out[:n]
        if n == 0:
            return rows
        idx = np.asarray(indices, dtype=np.intp)
        oids = self._np_oids[idx]
        ts = self._np_ts[idx]
        oid_list = oids.tolist()
        ts_list = ts.tolist()
        recency_last: np.ndarray | None = None

        for slot, code in self._plan:
            if code == _F_RECENCY:
                if recency_last is None:
                    uploads = self._np_upload[oids]
                    # dict.get at C speed with the per-object upload time as
                    # the miss default — the scalar path's None fallback.
                    last = np.fromiter(
                        map(self._last_access.get, oid_list, uploads.tolist()),
                        dtype=np.float64,
                        count=n,
                    )
                    # Re-accesses *within* the batch: each occurrence's
                    # "last access" is the previous occurrence's timestamp
                    # (the sequential loop observes between rows).  Stable
                    # sort groups equal oids in batch order.
                    order = np.argsort(oids, kind="stable")
                    sorted_oids = oids[order]
                    dup = np.nonzero(sorted_oids[1:] == sorted_oids[:-1])[0]
                    if dup.size:
                        last[order[dup + 1]] = ts[order[dup]]
                    recency_last = last
                d = ts - recency_last
                b = np.floor_divide(d, _TEN_MINUTES)
                np.minimum(b, _MAX_BUCKET, out=b)
                rows[:, slot] = np.where(d > 0.0, b, 0.0)
            elif code == _F_PHOTO_AGE:
                d = ts - self._np_upload[oids]
                b = np.floor_divide(d, _TEN_MINUTES)
                np.minimum(b, _MAX_BUCKET, out=b)
                rows[:, slot] = np.where(d > 0.0, b, 0.0)
            elif code == _F_OWNER_AVG_VIEWS:
                rows[:, slot] = self._np_owner_avg_views[oids]
            elif code == _F_ACCESS_HOUR:
                rows[:, slot] = np.floor_divide(np.mod(ts, 86400.0), 3600.0)
            elif code == _F_PHOTO_TYPE:
                rows[:, slot] = self._np_photo_type[oids]
            elif code == _F_PHOTO_SIZE:
                rows[:, slot] = self._np_size[oids]
            elif code == _F_OWNER_ACTIVE_FRIENDS:
                rows[:, slot] = self._np_owner_active_friends[oids]
            elif code == _F_TERMINAL:
                rows[:, slot] = self._np_terminal[idx]
            else:  # _F_RECENT_REQUESTS
                cutoff = ts - 60.0
                recent = self._recent
                n_win = len(recent)
                within = np.arange(n) - np.searchsorted(ts, cutoff, side="left")
                if n_win:
                    win = np.fromiter(recent, dtype=np.float64, count=n_win)
                    prior = n_win - np.searchsorted(win, cutoff, side="left")
                    rows[:, slot] = prior + within
                else:
                    rows[:, slot] = within

        # State advance = n sequential observes (+ the scalar path's lazy
        # window pruning, which only ever happens when the plan computes
        # recent_requests).
        self._last_access.update(zip(oid_list, ts_list))
        recent = self._recent
        recent.extend(ts_list)
        if self._has_recent:
            cutoff_last = ts_list[-1] - 60.0
            while recent and recent[0] < cutoff_last:
                recent.popleft()
        return rows

    def observe(self, index: int) -> None:
        """Record the request at ``index`` into the running state."""
        t = self._ts_list[index]
        self._last_access[self._oid_list[index]] = t
        self._recent.append(t)

    def reset(self) -> None:
        self._last_access.clear()
        self._recent.clear()


class OnlineClassifierAdmission(AdmissionPolicy):
    """Per-miss classification with live feature construction (Fig. 4).

    Semantically equivalent to
    :class:`repro.core.admission.ClassifierAdmission` fed with batch
    predictions from the same model, but computes each verdict at decision
    time and accumulates the measured per-decision latency
    (:attr:`mean_decision_seconds` — the empirical ``t_classify``).

    Parameters beyond the model/tracker/threshold triple:

    * ``use_fast_path`` (default on) — classify through
      :func:`repro.ml.fastpath.fast_predictor` (compiled tree +
      ``features_into`` into a reused buffer).  Off = the reference
      ``tracker.features(i)`` → ``model.predict`` path; verdicts are
      identical either way (asserted by the perf harness).
    * ``timing_capacity`` — reservoir bound for per-decision latencies;
      ``0`` disables timing *entirely* (no ``perf_counter`` calls on the
      hot path) for pure-throughput runs.

    The timed span covers exactly feature construction + prediction on
    both paths; history-table rectification and ``observe`` stay outside,
    so fast and reference timings are comparable.

    Note: ``observe`` must see *every* request, so this policy relies on the
    simulator's ``on_hit`` callback as well as ``should_admit``.
    """

    def __init__(
        self,
        model,
        tracker: OnlineFeatureTracker,
        m_threshold: float,
        history_table: HistoryTable | None = None,
        pos_label=ONE_TIME,
        timing_capacity: int = 10_000,
        use_fast_path: bool = True,
    ):
        if m_threshold <= 0:
            raise ValueError("m_threshold must be positive")
        if timing_capacity < 0:
            raise ValueError("timing_capacity must be >= 0")
        self.model = model
        self.tracker = tracker
        self.m_threshold = float(m_threshold)
        self.history = history_table if history_table is not None else HistoryTable(1024)
        self.pos_label = pos_label
        self.use_fast_path = bool(use_fast_path)
        self.timing_enabled = timing_capacity > 0
        self.denied = 0
        self.rectified_admits = 0
        self.decisions = 0
        self.decision_seconds = 0.0
        #: Monotonic (``time.perf_counter``) per-decision durations behind
        #: the Eq.-6 ``t_classify`` percentiles in the serving metrics
        #: snapshot (:func:`repro.server.metrics.admission_timing`) — a
        #: bounded :class:`~repro.obs.registry.Reservoir`, so a long
        #: deployment keeps O(``timing_capacity``) memory while count,
        #: mean and max stay exact.  Empty when timing is disabled.
        self.decision_times = Reservoir(capacity=max(1, timing_capacity))
        if self.use_fast_path:
            self._predict_one = fast_predictor(model).predict_one
            self._buf = [0.0] * len(tracker.feature_names)
            self._classify = (
                self._classify_fast_timed
                if self.timing_enabled
                else self._classify_fast
            )
        else:
            self._classify = (
                self._classify_reference_timed
                if self.timing_enabled
                else self._classify_reference
            )

    @property
    def mean_decision_seconds(self) -> float:
        """Measured per-miss classification time (the Eq.-6 t_classify)."""
        return self.decision_seconds / self.decisions if self.decisions else 0.0

    # ---------------------------------------------------- classify variants

    def _classify_fast(self, index: int):
        return self._predict_one(self.tracker.features_into(index, self._buf))

    def _classify_fast_timed(self, index: int):
        t0 = time.perf_counter()
        verdict = self._predict_one(
            self.tracker.features_into(index, self._buf)
        )
        elapsed = time.perf_counter() - t0
        self.decision_seconds += elapsed
        self.decision_times.add(elapsed)
        return verdict

    def _classify_reference(self, index: int):
        x = self.tracker.features(index)
        return self.model.predict(x.reshape(1, -1))[0]

    def _classify_reference_timed(self, index: int):
        t0 = time.perf_counter()
        x = self.tracker.features(index)
        verdict = self.model.predict(x.reshape(1, -1))[0]
        elapsed = time.perf_counter() - t0
        self.decision_seconds += elapsed
        self.decision_times.add(elapsed)
        return verdict

    # -------------------------------------------------------------- public

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        verdict = self._classify(index)
        self.decisions += 1
        self.tracker.observe(index)

        if verdict != self.pos_label:
            return True
        if self.history.rectify(oid, index, self.m_threshold):
            self.rectified_admits += 1
            return True
        self.history.record(oid, index)
        self.denied += 1
        return False

    def on_hit(self, index: int, oid: int, size: int) -> None:
        self.tracker.observe(index)

    def reset(self) -> None:
        self.tracker.reset()
        self.history.clear()
        self.denied = 0
        self.rectified_admits = 0
        self.decisions = 0
        self.decision_seconds = 0.0
        self.decision_times.clear()
