"""Online (per-request) classification — the production deployment path.

The batch pipeline in :mod:`repro.core.training` precomputes per-access
verdicts because features are pure request-time functions.  A production
cache server cannot batch: it must build the feature vector *at miss time*
from running state and invoke the tree (the paper measures
``t_classify = 0.4 µs`` for its C implementation).

:class:`OnlineFeatureTracker` maintains that running state — last-access
time per object, a trailing one-minute request counter — and reproduces the
offline feature matrix *exactly* (this equivalence is tested), which proves
the offline evaluation does not leak future information.

:class:`OnlineClassifierAdmission` plugs the tracker + a fitted model +
the history table into the simulator, and records per-decision wall time so
the Eq.-6 ``t_classify`` term can be measured rather than assumed.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.cache.base import AdmissionPolicy
from repro.core.features import PAPER_FEATURE_NAMES
from repro.core.history_table import HistoryTable
from repro.core.labeling import ONE_TIME
from repro.obs.registry import Reservoir
from repro.trace.records import Trace

__all__ = ["OnlineFeatureTracker", "OnlineClassifierAdmission"]

_TEN_MINUTES = 600.0
_MAX_TIME_BUCKETS = 90 * 144


class OnlineFeatureTracker:
    """Incrementally compute the §3.2 features, one request at a time.

    ``observe(index)`` must be called for *every* request in trace order
    (hits included — recency depends on them); ``features(index)`` returns
    the feature vector for the current request *before* it is recorded.
    """

    def __init__(self, trace: Trace, feature_names=PAPER_FEATURE_NAMES):
        self.trace = trace
        self.feature_names = tuple(feature_names)
        self._ts = trace.timestamps
        self._oids = trace.object_ids
        self._terminal = trace.accesses["terminal"]
        self._catalog = trace.catalog
        self._last_access: dict[int, float] = {}
        self._recent: deque[float] = deque()
        self._builders = {
            "owner_avg_views": self._owner_avg_views,
            "owner_active_friends": self._owner_active_friends,
            "photo_type": self._photo_type,
            "photo_size": self._photo_size,
            "photo_age": self._photo_age,
            "recency": self._recency,
            "access_hour": self._access_hour,
            "terminal": self._terminal_of,
            "recent_requests": self._recent_requests,
        }
        unknown = set(self.feature_names) - set(self._builders)
        if unknown:
            raise ValueError(f"unknown features: {sorted(unknown)}")

    # ------------------------------------------------------ feature pieces

    @staticmethod
    def _bucket(seconds: float) -> float:
        b = int(max(seconds, 0.0) // _TEN_MINUTES)
        return float(min(b, _MAX_TIME_BUCKETS - 1))

    def _owner_avg_views(self, i, oid):
        return float(self.trace.owner_avg_views[self._catalog["owner_id"][oid]])

    def _owner_active_friends(self, i, oid):
        return float(
            self.trace.owner_active_friends[self._catalog["owner_id"][oid]]
        )

    def _photo_type(self, i, oid):
        return float(self._catalog["photo_type"][oid])

    def _photo_size(self, i, oid):
        return float(self._catalog["size"][oid])

    def _photo_age(self, i, oid):
        return self._bucket(self._ts[i] - self._catalog["upload_time"][oid])

    def _recency(self, i, oid):
        last = self._last_access.get(oid)
        if last is None:
            last = self._catalog["upload_time"][oid]
        return self._bucket(self._ts[i] - last)

    def _access_hour(self, i, oid):
        return float(int((self._ts[i] % 86400.0) // 3600.0))

    def _terminal_of(self, i, oid):
        return float(self._terminal[i])

    def _recent_requests(self, i, oid):
        t = self._ts[i]
        recent = self._recent
        while recent and recent[0] < t - 60.0:
            recent.popleft()
        return float(len(recent))

    # -------------------------------------------------------------- public

    def features(self, index: int) -> np.ndarray:
        """Feature vector for the request at ``index`` (not yet observed)."""
        oid = int(self._oids[index])
        return np.array(
            [self._builders[name](index, oid) for name in self.feature_names]
        )

    def observe(self, index: int) -> None:
        """Record the request at ``index`` into the running state."""
        oid = int(self._oids[index])
        t = float(self._ts[index])
        self._last_access[oid] = t
        self._recent.append(t)

    def reset(self) -> None:
        self._last_access.clear()
        self._recent.clear()


class OnlineClassifierAdmission(AdmissionPolicy):
    """Per-miss classification with live feature construction (Fig. 4).

    Semantically equivalent to
    :class:`repro.core.admission.ClassifierAdmission` fed with batch
    predictions from the same model, but computes each verdict at decision
    time and accumulates the measured per-decision latency
    (:attr:`mean_decision_seconds` — the empirical ``t_classify``).

    Note: ``observe`` must see *every* request, so this policy relies on the
    simulator's ``on_hit`` callback as well as ``should_admit``.
    """

    def __init__(
        self,
        model,
        tracker: OnlineFeatureTracker,
        m_threshold: float,
        history_table: HistoryTable | None = None,
        pos_label=ONE_TIME,
        timing_capacity: int = 10_000,
    ):
        if m_threshold <= 0:
            raise ValueError("m_threshold must be positive")
        self.model = model
        self.tracker = tracker
        self.m_threshold = float(m_threshold)
        self.history = history_table if history_table is not None else HistoryTable(1024)
        self.pos_label = pos_label
        self.denied = 0
        self.rectified_admits = 0
        self.decisions = 0
        self.decision_seconds = 0.0
        #: Monotonic (``time.perf_counter``) per-decision durations behind
        #: the Eq.-6 ``t_classify`` percentiles in the serving metrics
        #: snapshot (:func:`repro.server.metrics.admission_timing`) — a
        #: bounded :class:`~repro.obs.registry.Reservoir`, so a long
        #: deployment keeps O(``timing_capacity``) memory while count,
        #: mean and max stay exact.
        self.decision_times = Reservoir(capacity=timing_capacity)

    @property
    def mean_decision_seconds(self) -> float:
        """Measured per-miss classification time (the Eq.-6 t_classify)."""
        return self.decision_seconds / self.decisions if self.decisions else 0.0

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        t0 = time.perf_counter()
        x = self.tracker.features(index)
        verdict = self.model.predict(x.reshape(1, -1))[0]
        elapsed = time.perf_counter() - t0
        self.decision_seconds += elapsed
        self.decision_times.add(elapsed)
        self.decisions += 1
        self.tracker.observe(index)

        if verdict != self.pos_label:
            return True
        if self.history.rectify(oid, index, self.m_threshold):
            self.rectified_admits += 1
            return True
        self.history.record(oid, index)
        self.denied += 1
        return False

    def on_hit(self, index: int, oid: int, size: int) -> None:
        self.tracker.observe(index)

    def reset(self) -> None:
        self.tracker.reset()
        self.history.clear()
        self.denied = 0
        self.rectified_admits = 0
        self.decisions = 0
        self.decision_seconds = 0.0
        self.decision_times.clear()
