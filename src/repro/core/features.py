"""Feature extraction for the caching classifier (§3.2).

The nine candidate features of §3.2.1, computed for every access in one
vectorised pass.  All values are information *available at request time* —
nothing peeks at future accesses, which is what makes the prediction
"non-history-oriented" in the paper's sense (the object itself may have no
history at all).

Discretisation follows §3.2.3: photo types map to 0–11, terminals to 0/1,
age and recency to 10-minute buckets, access time to the hour of day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.preprocessing import UniformDiscretizer
from repro.trace.records import Trace

__all__ = [
    "FEATURE_NAMES",
    "PAPER_FEATURE_NAMES",
    "FeatureMatrix",
    "extract_features",
]

#: All candidate features, column order of the extracted matrix.
FEATURE_NAMES = (
    "owner_avg_views",     # owner's historical mean views per photo
    "owner_active_friends",
    "photo_type",          # 0..11 (§3.2.3 discretisation)
    "photo_size",          # bytes
    "photo_age",           # 10-minute buckets since upload
    "recency",             # 10-minute buckets since previous access/upload
    "access_hour",         # 0..23
    "terminal",            # 0 = PC, 1 = mobile
    "recent_requests",     # system requests in the trailing minute
)

#: The subset §3.2.2's greedy information-gain selection settles on.
PAPER_FEATURE_NAMES = (
    "owner_avg_views",
    "recency",
    "photo_age",
    "access_hour",
    "photo_type",
)

_TEN_MINUTES = 600.0
#: Ages/recencies cap at 90 days of 10-minute buckets; the tail bucket
#: absorbs anything older (a bounded feature table, as production would use).
_MAX_TIME_BUCKETS = 90 * 144


@dataclass
class FeatureMatrix:
    """Extracted features plus column metadata."""

    X: np.ndarray                 # (n_accesses, n_features) float64
    names: tuple[str, ...]

    def column(self, name: str) -> np.ndarray:
        try:
            return self.X[:, self.names.index(name)]
        except ValueError:
            raise KeyError(f"unknown feature {name!r}") from None

    def select(self, names) -> "FeatureMatrix":
        """Project onto a subset of features (e.g. ``PAPER_FEATURE_NAMES``)."""
        idx = [self.names.index(n) for n in names]
        return FeatureMatrix(X=self.X[:, idx], names=tuple(names))


def _previous_access_times(trace: Trace) -> np.ndarray:
    """Timestamp of each access's previous access to the same object.

    ``NaN`` where the access is the object's first in the trace.  Vectorised
    via a stable sort grouping accesses per object in time order.
    """
    oid = trace.object_ids
    ts = trace.timestamps
    n = oid.shape[0]
    order = np.argsort(oid, kind="stable")  # groups objects, time-ordered
    prev = np.full(n, np.nan)
    same = oid[order][1:] == oid[order][:-1]
    prev_positions = order[:-1][same]
    this_positions = order[1:][same]
    prev[this_positions] = ts[prev_positions]
    return prev


def _recent_request_counts(ts: np.ndarray, window: float = 60.0) -> np.ndarray:
    """Requests in the trailing ``window`` seconds, excluding the current one."""
    starts = np.searchsorted(ts, ts - window, side="left")
    return np.arange(ts.shape[0]) - starts


def extract_features(trace: Trace) -> FeatureMatrix:
    """Build the full §3.2 feature matrix for every access of ``trace``."""
    acc = trace.accesses
    oid = acc["object_id"]
    ts = acc["timestamp"]
    cat = trace.catalog[oid]

    owner = cat["owner_id"]
    upload = cat["upload_time"]

    bucket = UniformDiscretizer(_TEN_MINUTES, max_bins=_MAX_TIME_BUCKETS)

    age = bucket(ts - upload)

    prev_ts = _previous_access_times(trace)
    recency_seconds = np.where(np.isnan(prev_ts), ts - upload, ts - prev_ts)
    recency = bucket(recency_seconds)

    X = np.column_stack(
        [
            trace.owner_avg_views[owner],
            trace.owner_active_friends[owner].astype(np.float64),
            cat["photo_type"].astype(np.float64),
            cat["size"].astype(np.float64),
            age.astype(np.float64),
            recency.astype(np.float64),
            np.floor((ts % 86400.0) / 3600.0),
            acc["terminal"].astype(np.float64),
            _recent_request_counts(ts).astype(np.float64),
        ]
    )
    return FeatureMatrix(X=np.ascontiguousarray(X), names=FEATURE_NAMES)
