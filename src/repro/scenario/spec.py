"""Declarative scenario specifications: nodes, replication, event timeline.

A :class:`ScenarioSpec` describes one cluster experiment end to end — the
OC-tier topology, the admission configuration, and a timeline of timed
**events** that perturb the system mid-replay.  Specs are plain data: they
round-trip through dicts/JSON (``from_dict``/``to_dict``/``load_spec``), so
scenario files can live next to benchmark configs and CI jobs.

Event triggers are **base-trace request indices**: deterministic, replay-
speed independent, and directly comparable across runs.  Hot-key floods
*inject* extra requests, so the engine maintains a base→merged index map
and converts every later trigger (see :mod:`repro.scenario.flood`).

Event kinds
-----------
``node_kill``
    Remove ``node`` from the ring at index ``at``.  Its cached bytes are
    lost to the tier; survivors absorb the remapped shard.
``node_restart``
    Bring a previously killed ``node`` back, **cold**, at index ``at``
    (fresh policy instance, ring rebalance back to the original layout).
``hot_key_flood``
    One viral owner: ``intensity × length`` extra requests to a fresh
    album of ``photos`` photos are injected across the window
    ``[at, at+length)`` (see :func:`repro.scenario.flood.inject_hot_key_flood`).
``rolling_deploy``
    Staggered admission-model swap: across ``[at, at+length)`` each OC
    node in name order atomically swaps its admission filter to the
    ``admission`` target — the simulation analogue of pushing a new model
    through :meth:`repro.server.retrainer.Retrainer.deploy_model` one node
    at a time.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "EVENT_KINDS",
    "ADMISSION_KINDS",
    "EventSpec",
    "ScenarioSpec",
    "load_spec",
    "reference_scenario",
]

#: Valid event kinds; point events have no window, windowed events must
#: declare a positive ``length``.
EVENT_KINDS = ("node_kill", "node_restart", "hot_key_flood", "rolling_deploy")
_WINDOWED = frozenset({"hot_key_flood", "rolling_deploy"})
_NODE_SCOPED = frozenset({"node_kill", "node_restart"})

#: Admission configurations the engine can build without training a model
#: mid-replay: ``none`` (always admit), ``oracle`` (Ideal labels), and
#: ``noisy`` (oracle corrupted by the spec's fn/fp rates — a stand-in for
#: a stale production model that a rolling deploy then upgrades).
ADMISSION_KINDS = ("none", "oracle", "noisy")


@dataclass(frozen=True)
class EventSpec:
    """One timed perturbation; see the module docstring for semantics."""

    kind: str
    at: int
    node: str | None = None       # node_kill / node_restart target
    length: int = 0               # hot_key_flood / rolling_deploy window
    intensity: float = 1.0        # flood: injected requests per window slot
    photos: int = 32              # flood: photos in the viral album
    admission: str | None = None  # rolling_deploy: target admission kind

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; valid kinds: "
                f"{', '.join(EVENT_KINDS)}"
            )
        if self.at < 0:
            raise ValueError(f"{self.kind}: trigger index must be >= 0")
        if self.kind in _WINDOWED:
            if self.length < 1:
                raise ValueError(f"{self.kind} needs a window length >= 1")
        elif self.length:
            raise ValueError(f"{self.kind} is a point event; length must be 0")
        if self.kind in _NODE_SCOPED and not self.node:
            raise ValueError(f"{self.kind} needs a target node name")
        if self.kind == "hot_key_flood":
            if self.intensity <= 0:
                raise ValueError("hot_key_flood intensity must be positive")
            if self.photos < 1:
                raise ValueError("hot_key_flood needs at least one photo")
        if self.kind == "rolling_deploy":
            if self.admission not in ADMISSION_KINDS:
                raise ValueError(
                    "rolling_deploy needs a target admission in "
                    f"{ADMISSION_KINDS}, got {self.admission!r}"
                )

    @property
    def end(self) -> int:
        """One past the last affected index (``at`` for point events)."""
        return self.at + self.length


@dataclass(frozen=True)
class ScenarioSpec:
    """A full scenario: topology + admission config + event timeline.

    ``requests`` is the number of *base-trace* requests replayed; every
    event index is validated against it at construction time.  Capacity
    fractions are per node, as fractions of the merged trace's footprint.
    """

    nodes: int
    requests: int
    name: str = "scenario"
    replication: int = 1
    oc_capacity_fraction: float = 1.0 / 150.0
    dc_capacity_fraction: float = 1.0 / 20.0
    policy: str = "lru"
    admission: str = "none"
    m_window: float = 5000.0      # label horizon for oracle/noisy admission
    noisy_fn_rate: float = 0.3    # "stale model" error rates (admission=noisy
    noisy_fp_rate: float = 0.3    # or a rolling_deploy from/to noisy)
    seed: int = 0
    events: tuple[EventSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("need at least one OC node")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 1 <= self.replication <= self.nodes:
            raise ValueError(
                f"replication must be in [1, {self.nodes}] "
                f"(got {self.replication})"
            )
        if not 0.0 < self.oc_capacity_fraction <= 1.0:
            raise ValueError("oc_capacity_fraction must be in (0, 1]")
        if not 0.0 < self.dc_capacity_fraction <= 1.0:
            raise ValueError("dc_capacity_fraction must be in (0, 1]")
        if self.admission not in ADMISSION_KINDS:
            raise ValueError(
                f"admission must be one of {ADMISSION_KINDS}, "
                f"got {self.admission!r}"
            )
        if self.m_window <= 0:
            raise ValueError("m_window must be positive")
        for rate in (self.noisy_fn_rate, self.noisy_fp_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("noisy error rates must be in [0, 1]")
        # Normalise events into a tuple of EventSpec sorted by trigger.
        events = tuple(
            e if isinstance(e, EventSpec) else EventSpec(**e)
            for e in self.events
        )
        object.__setattr__(
            self, "events", tuple(sorted(events, key=lambda e: (e.at, e.kind)))
        )
        self._validate_timeline()

    # ------------------------------------------------------------- timeline

    def _validate_timeline(self) -> None:
        names = set(self.node_names)
        for ev in self.events:
            if ev.end > self.requests:
                raise ValueError(
                    f"{ev.kind} window [{ev.at}, {ev.end}) exceeds the "
                    f"{self.requests}-request replay"
                )
            if ev.at >= self.requests:
                raise ValueError(
                    f"{ev.kind} trigger {ev.at} is out of range for a "
                    f"{self.requests}-request replay"
                )
            if ev.node is not None and ev.node not in names:
                raise ValueError(
                    f"{ev.kind} targets unknown node {ev.node!r}; "
                    f"nodes are {self.node_names}"
                )
        # Windowed events must not overlap each other: phases are defined
        # by window boundaries, and overlapping floods/deploys would make
        # per-phase attribution ambiguous.
        windowed = [e for e in self.events if e.kind in _WINDOWED]
        for prev, cur in zip(windowed, windowed[1:]):
            if cur.at < prev.end:
                raise ValueError(
                    f"overlapping event windows: {prev.kind} "
                    f"[{prev.at}, {prev.end}) and {cur.kind} "
                    f"[{cur.at}, {cur.end})"
                )
        # Kill/restart pairing: a node dies at most once before its
        # restart, restarts need a preceding kill, and the ring must never
        # lose its last node.
        down: set[str] = set()
        for ev in self.events:
            if ev.kind == "node_kill":
                if ev.node in down:
                    raise ValueError(f"{ev.node!r} killed twice without restart")
                down.add(ev.node)
                if len(down) >= self.nodes:
                    raise ValueError("cannot kill the last OC node")
            elif ev.kind == "node_restart":
                if ev.node not in down:
                    raise ValueError(
                        f"restart of {ev.node!r} without a preceding kill"
                    )
                down.remove(ev.node)

    # ------------------------------------------------------------- helpers

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(f"oc{i}" for i in range(self.nodes))

    def to_dict(self) -> dict:
        """JSON-able representation; exact inverse of :meth:`from_dict`."""
        out = asdict(self)
        out["events"] = [
            {k: v for k, v in asdict(e).items() if v not in (None,) and not
             (k in ("length",) and v == 0)
             and not (k == "intensity" and v == 1.0)
             and not (k == "photos" and v == 32)}
            for e in self.events
        ]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Build a spec from a plain dict, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ValueError("scenario spec must be a mapping")
        fields = set(cls.__dataclass_fields__)
        unknown = sorted(set(data) - fields)
        if unknown:
            raise ValueError(
                f"unknown scenario keys {unknown}; valid keys: "
                f"{sorted(fields)}"
            )
        data = dict(data)
        raw_events = data.pop("events", [])
        events = []
        for ev in raw_events:
            if isinstance(ev, EventSpec):
                events.append(ev)
                continue
            if not isinstance(ev, dict):
                raise ValueError("each event must be a mapping")
            ev_fields = set(EventSpec.__dataclass_fields__)
            bad = sorted(set(ev) - ev_fields)
            if bad:
                raise ValueError(
                    f"unknown event keys {bad}; valid keys: {sorted(ev_fields)}"
                )
            events.append(EventSpec(**ev))
        return cls(events=tuple(events), **data)


def load_spec(path: str) -> ScenarioSpec:
    """Load a JSON scenario file into a validated :class:`ScenarioSpec`."""
    with open(path, encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    return ScenarioSpec.from_dict(data)


def reference_scenario(requests: int = 200_000, *, seed: int = 0) -> ScenarioSpec:
    """The repository's reference scenario (ISSUE 6 acceptance shape).

    4 OC nodes at replication 2; a hot-key flood in the first third, a
    kill + cold restart of ``oc1`` in the middle, and a rolling deploy of
    the oracle admission model (upgrading the initial noisy one) near the
    end — each separated by steady-state phases so recovery is visible.
    """
    if requests < 100:
        raise ValueError("reference scenario needs at least 100 requests")
    r = requests
    return ScenarioSpec(
        name="reference",
        nodes=4,
        requests=r,
        replication=2,
        admission="noisy",
        seed=seed,
        events=(
            EventSpec(kind="hot_key_flood", at=r // 5, length=r // 10,
                      intensity=1.0, photos=24),
            EventSpec(kind="node_kill", at=r // 2, node="oc1"),
            EventSpec(kind="node_restart", at=(3 * r) // 5, node="oc1"),
            EventSpec(kind="rolling_deploy", at=(3 * r) // 4, length=r // 10,
                      admission="oracle"),
        ),
    )
