"""Scenario results: per-phase counters, latency percentiles, oracle gaps.

A scenario replay is cut into **phases** at every event boundary (each
``at`` and window end), so the disruption and the recovery are separately
measurable.  Each phase carries exact request-flow counters, SSD-write
attribution (primary vs replica), seeded latency percentiles from a
:class:`repro.obs.registry.Reservoir`, and — when the oracle comparator
ran — the hit/write-rate gap against an idealised single cache of the same
aggregate capacity.

``ScenarioReport.to_dict()`` is the JSON contract consumed by
``benchmarks/bench_cluster_scenario.py`` and the ``bench_trend`` CI gate;
it is tagged ``"kind": "cluster_scenario"`` so the gate can tell scenario
reports from component micro-benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PhaseStats", "ScenarioReport", "format_report"]

REPORT_KIND = "cluster_scenario"


@dataclass
class PhaseStats:
    """Counters for one inter-boundary slice of the merged replay."""

    index: int
    start: int                 # merged-trace request index, inclusive
    end: int                   # exclusive
    active: tuple[str, ...]    # human-readable descriptions of live faults
    steady: bool               # no fault active anywhere in the phase
    pristine: bool             # ends before the first divergence from the
                               # failure-free baseline (exact-equality zone)
    requests: int = 0
    oc_hits: int = 0
    dc_hits: int = 0
    backend_reads: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0         # bytes served by the OC tier
    primary_writes: int = 0    # OC SSD writes on the request path
    replica_writes: int = 0    # OC SSD writes from replica write-through
    dc_writes: int = 0
    admissions_denied: int = 0
    # Write-provenance deltas from the run's WriteLedger (None when the
    # replay carried no ledger, e.g. hand-built phases in tests).
    writes_by_cause: dict | None = None
    avoided_writes: int = 0
    avoided_bytes: int = 0
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_p99: float = 0.0
    latency_p999: float = 0.0
    # Oracle comparator (None until the comparator fills them in).
    oracle_hit_rate: float | None = None
    oracle_write_rate: float | None = None

    @property
    def oc_hit_rate(self) -> float:
        return self.oc_hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        if not self.bytes_requested:
            return 0.0
        return self.bytes_hit / self.bytes_requested

    @property
    def write_rate(self) -> float:
        """Primary OC SSD writes per request (replicas reported apart)."""
        return self.primary_writes / self.requests if self.requests else 0.0

    @property
    def hit_gap(self) -> float | None:
        """Cluster − oracle OC hit rate (negative: cluster loses hits)."""
        if self.oracle_hit_rate is None:
            return None
        return self.oc_hit_rate - self.oracle_hit_rate

    @property
    def write_gap(self) -> float | None:
        """Cluster − oracle write rate (positive: cluster writes more)."""
        if self.oracle_write_rate is None:
            return None
        return self.write_rate - self.oracle_write_rate

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "active": list(self.active),
            "steady": self.steady,
            "pristine": self.pristine,
            "requests": self.requests,
            "oc_hits": self.oc_hits,
            "dc_hits": self.dc_hits,
            "backend_reads": self.backend_reads,
            "bytes_requested": self.bytes_requested,
            "bytes_hit": self.bytes_hit,
            "oc_hit_rate": self.oc_hit_rate,
            "byte_hit_rate": self.byte_hit_rate,
            "primary_writes": self.primary_writes,
            "replica_writes": self.replica_writes,
            "dc_writes": self.dc_writes,
            "admissions_denied": self.admissions_denied,
            "writes_by_cause": (
                dict(self.writes_by_cause)
                if self.writes_by_cause is not None
                else None
            ),
            "avoided_writes": self.avoided_writes,
            "avoided_bytes": self.avoided_bytes,
            "write_rate": self.write_rate,
            "latency_mean": self.latency_mean,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "latency_p999": self.latency_p999,
            "oracle_hit_rate": self.oracle_hit_rate,
            "oracle_write_rate": self.oracle_write_rate,
            "hit_gap": self.hit_gap,
            "write_gap": self.write_gap,
        }


@dataclass
class ScenarioReport:
    """Everything one scenario run produced."""

    name: str
    spec: dict                   # ScenarioSpec.to_dict() snapshot
    phases: list[PhaseStats]
    base_requests: int           # spec.requests (pre-flood)
    injected_requests: int       # extra requests merged in by floods
    merged_requests: int
    baseline_checked: bool       # whether the failure-free baseline ran
    baseline_equal: bool         # pristine phases matched it exactly
    events_applied: list[str] = field(default_factory=list)
    #: ``WriteLedger.snapshot()`` of the main replay, plus
    #: ``cluster_ssd_writes`` and the ``exact`` invariant flag (per-cause
    #: totals sum to the cluster's own write counters, retired included).
    ledger: dict | None = None

    # ------------------------------------------------------------ aggregates

    @property
    def requests(self) -> int:
        return sum(p.requests for p in self.phases)

    @property
    def oc_hit_rate(self) -> float:
        n = self.requests
        return sum(p.oc_hits for p in self.phases) / n if n else 0.0

    @property
    def total_oc_writes(self) -> int:
        return sum(p.primary_writes + p.replica_writes for p in self.phases)

    @property
    def max_abs_hit_gap(self) -> float | None:
        gaps = [abs(p.hit_gap) for p in self.phases if p.hit_gap is not None]
        return max(gaps) if gaps else None

    @property
    def max_abs_write_gap(self) -> float | None:
        gaps = [abs(p.write_gap) for p in self.phases if p.write_gap is not None]
        return max(gaps) if gaps else None

    def to_dict(self) -> dict:
        return {
            "kind": REPORT_KIND,
            "name": self.name,
            "spec": self.spec,
            "base_requests": self.base_requests,
            "injected_requests": self.injected_requests,
            "merged_requests": self.merged_requests,
            "baseline_checked": self.baseline_checked,
            "baseline_equal": self.baseline_equal,
            "events_applied": list(self.events_applied),
            "ledger": self.ledger,
            "oc_hit_rate": self.oc_hit_rate,
            "total_oc_writes": self.total_oc_writes,
            "max_abs_hit_gap": self.max_abs_hit_gap,
            "max_abs_write_gap": self.max_abs_write_gap,
            "phases": [p.to_dict() for p in self.phases],
        }


def format_report(report: ScenarioReport) -> str:
    """Fixed-width phase table plus the headline aggregates."""
    lines = [
        f"scenario {report.name!r}: {report.merged_requests:,} requests "
        f"({report.base_requests:,} base + {report.injected_requests:,} injected)",
        f"overall OC hit rate {report.oc_hit_rate:.3f}, "
        f"OC SSD writes {report.total_oc_writes:,}",
    ]
    if report.baseline_checked:
        verdict = "exact match" if report.baseline_equal else "MISMATCH"
        lines.append(f"pristine phases vs failure-free baseline: {verdict}")
    if report.ledger is not None:
        led = report.ledger
        causes = ", ".join(
            f"{cause} {count:,}"
            for cause, count in led["writes_by_cause"].items()
        )
        verdict = "exact" if led.get("exact") else "MISMATCH"
        lines.append(
            f"write provenance ({verdict} vs {led['cluster_ssd_writes']:,} "
            f"cluster writes): {causes}; "
            f"avoided {led['avoided_writes']:,} writes "
            f"({led['avoided_bytes']:,} bytes)"
        )
    header = (
        f"{'phase':>5} {'span':>19} {'req':>8} {'hit':>6} {'wr':>6} "
        f"{'p50ms':>7} {'p99ms':>7} {'p999ms':>7} {'gap(hit)':>9} "
        f"{'gap(wr)':>8}  active"
    )
    lines.append(header)
    for p in report.phases:
        hg = f"{p.hit_gap:+.3f}" if p.hit_gap is not None else "-"
        wg = f"{p.write_gap:+.3f}" if p.write_gap is not None else "-"
        tag = ", ".join(p.active) if p.active else (
            "steady" if p.steady else ""
        )
        lines.append(
            f"{p.index:>5} {p.start:>9,}-{p.end:<9,} {p.requests:>8,} "
            f"{p.oc_hit_rate:>6.3f} {p.write_rate:>6.3f} "
            f"{1e3 * p.latency_p50:>7.3f} {1e3 * p.latency_p99:>7.3f} "
            f"{1e3 * p.latency_p999:>7.3f} {hg:>9} {wg:>8}  {tag}"
        )
    return "\n".join(lines)
