"""Deterministic fault-injecting scenario orchestrator for the cluster.

This package answers the operational question the single-node figures
cannot: *what happens to the two-tier cache when things go wrong?*  A
declarative :class:`~repro.scenario.spec.ScenarioSpec` describes an OC
topology (nodes, replication factor, admission configuration) and a
timeline of timed events — node kills, cold restarts, hot-key floods,
rolling model deploys — and :func:`~repro.scenario.engine.run_scenario`
replays shard-aware traffic through a
:class:`~repro.cluster.cluster.TwoTierCluster` while the timeline
perturbs it, reporting per-phase hit/write rates, latency percentiles
and the gap against an idealised single-cache oracle.

* :mod:`repro.scenario.spec` — the spec schema, JSON loader, validation;
* :mod:`repro.scenario.flood` — viral-burst synthesis and trace merging;
* :mod:`repro.scenario.engine` — the replicated replay + event loop;
* :mod:`repro.scenario.oracle` — the single-node comparator;
* :mod:`repro.scenario.report` — phase stats, report JSON, text table.

Everything is seed-deterministic: ``repro scenario --seed N`` twice gives
byte-identical reports.
"""

from repro.scenario.engine import run_scenario
from repro.scenario.flood import FloodInfo, apply_floods, make_flood_trace
from repro.scenario.oracle import build_admission, run_oracle
from repro.scenario.report import PhaseStats, ScenarioReport, format_report
from repro.scenario.spec import (
    ADMISSION_KINDS,
    EVENT_KINDS,
    EventSpec,
    ScenarioSpec,
    load_spec,
    reference_scenario,
)

__all__ = [
    "ADMISSION_KINDS",
    "EVENT_KINDS",
    "EventSpec",
    "ScenarioSpec",
    "load_spec",
    "reference_scenario",
    "FloodInfo",
    "apply_floods",
    "make_flood_trace",
    "run_scenario",
    "build_admission",
    "run_oracle",
    "PhaseStats",
    "ScenarioReport",
    "format_report",
]
