"""The scenario replay engine: shard-aware traffic under a fault timeline.

:func:`run_scenario` takes a :class:`~repro.scenario.spec.ScenarioSpec`
and a base trace and produces a :class:`~repro.scenario.report.ScenarioReport`:

1. **Merge** — every ``hot_key_flood`` event is synthesised and
   interleaved into the base trace (:mod:`repro.scenario.flood`); all
   later event triggers are converted from base- to merged-trace indices
   through the composed displacement map.
2. **Replay** — requests route through a
   :class:`~repro.cluster.cluster.TwoTierCluster` with replication factor
   ``spec.replication``: :meth:`~repro.cluster.hashing.ConsistentHashRing.lookup_n`
   names the owners, the *primary* serves the request (so request-flow
   counters match the unreplicated :func:`~repro.cluster.cluster.simulate_cluster`
   exactly in steady state), and the secondaries take a write-through
   :meth:`~repro.cluster.node.CacheNode.fill` that keeps warm standby
   copies for failover.  Kills, restarts and per-node rolling-deploy
   admission swaps fire between requests at their trigger indices.
3. **Baseline** — the same merged trace replays once more with the event
   timeline stripped; phases that end before the first fault must match
   it with exact counter equality (checked, reported, and asserted by the
   test suite).
4. **Oracle** — :func:`~repro.scenario.oracle.run_oracle` replays the
   merged trace through one aggregate-capacity cache and the per-phase
   hit/write gap is attached to each phase.

Determinism: one ``numpy.random.Generator`` seeded from ``spec.seed``
drives flood synthesis and the admission-noise seed; phase latency
reservoirs are seeded from ``spec.seed`` too.  Two runs of the same spec
over the same trace produce byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.simulator import make_policy
from repro.cluster.cluster import TwoTierCluster
from repro.cluster.node import CacheNode
from repro.core.labeling import one_time_labels
from repro.obs.registry import Reservoir
from repro.scenario.flood import FloodInfo, apply_floods
from repro.scenario.oracle import build_admission, node_capacity_bytes, run_oracle
from repro.scenario.report import PhaseStats, ScenarioReport
from repro.scenario.spec import ScenarioSpec
from repro.trace.records import Trace

__all__ = ["run_scenario"]

#: Latency samples retained per phase (Vitter reservoir; exact until then).
_RESERVOIR_CAPACITY = 10_000


@dataclass(frozen=True)
class _Action:
    """One engine-visible state change, in merged-trace coordinates."""

    index: int      # fires just before this merged request is served
    seq: int        # tie-break: spec order
    kind: str       # "kill" | "restart" | "deploy"
    node: str
    admission: str | None = None  # deploy target


@dataclass
class _Prepared:
    """Everything derived from (spec, trace) before any replay runs."""

    merged: Trace
    labels: np.ndarray
    admission_seed: int
    actions: list[_Action]
    boundaries: list[int]
    floods: list[FloodInfo]
    injected: int
    first_divergence: int | None    # merged index of the first action
    windows: list[tuple[str, int, int]]   # (kind, start, end) merged coords
    down_spans: dict[str, list[tuple[int, int]]]  # node → [(start, end))


@dataclass
class _PhaseCounters:
    requests: int = 0
    oc_hits: int = 0
    dc_hits: int = 0
    backend_reads: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    total_oc_writes: int = 0    # boundary delta of live+retired writes
    replica_writes: int = 0
    dc_writes: int = 0
    admissions_denied: int = 0
    reservoir: Reservoir = field(
        default_factory=lambda: Reservoir(_RESERVOIR_CAPACITY)
    )

    @property
    def primary_writes(self) -> int:
        return self.total_oc_writes - self.replica_writes

    def equal_counters(self, other: "_PhaseCounters") -> bool:
        return (
            self.requests == other.requests
            and self.oc_hits == other.oc_hits
            and self.dc_hits == other.dc_hits
            and self.backend_reads == other.backend_reads
            and self.bytes_requested == other.bytes_requested
            and self.bytes_hit == other.bytes_hit
            and self.total_oc_writes == other.total_oc_writes
            and self.replica_writes == other.replica_writes
            and self.dc_writes == other.dc_writes
            and self.admissions_denied == other.admissions_denied
        )


def _truncate(trace: Trace, n: int) -> Trace:
    if trace.n_accesses < n:
        raise ValueError(
            f"trace has {trace.n_accesses:,} requests; "
            f"the scenario needs {n:,}"
        )
    if trace.n_accesses == n:
        return trace
    return Trace(
        accesses=np.ascontiguousarray(trace.accesses[:n]),
        catalog=trace.catalog,
        owner_active_friends=trace.owner_active_friends,
        owner_avg_views=trace.owner_avg_views,
        duration=trace.duration,
        viral_mask=trace.viral_mask,
    )


def _prepare(spec: ScenarioSpec, base_trace: Trace) -> _Prepared:
    rng = np.random.default_rng(spec.seed)
    base = _truncate(base_trace, spec.requests)
    floods = [e for e in spec.events if e.kind == "hot_key_flood"]
    merged, index_map, infos = apply_floods(base, floods, rng)
    labels = one_time_labels(merged.object_ids, spec.m_window)
    admission_seed = int(rng.integers(0, 2**63 - 1))
    n_merged = merged.n_accesses

    def to_merged(i: int) -> int:
        return int(index_map[i]) if i < spec.requests else n_merged

    actions: list[_Action] = []
    seq = 0
    for ev in spec.events:
        if ev.kind == "node_kill":
            actions.append(_Action(to_merged(ev.at), seq, "kill", ev.node))
        elif ev.kind == "node_restart":
            actions.append(_Action(to_merged(ev.at), seq, "restart", ev.node))
        elif ev.kind == "rolling_deploy":
            # Staggered swap: node j of k flips at at + j*length//k, in
            # name order — the whole fleet converges inside the window.
            for j, name in enumerate(spec.node_names):
                at = ev.at + (j * ev.length) // spec.nodes
                actions.append(
                    _Action(to_merged(at), seq, "deploy", name, ev.admission)
                )
        seq += 1
    actions.sort(key=lambda a: (a.index, a.seq))

    bounds = {0, n_merged}
    for ev in spec.events:
        bounds.add(to_merged(ev.at))
        if ev.length:
            bounds.add(to_merged(ev.end))
    boundaries = sorted(bounds)

    windows = [
        (ev.kind, to_merged(ev.at), to_merged(ev.end))
        for ev in spec.events
        if ev.length
    ]
    down_spans: dict[str, list[tuple[int, int]]] = {}
    open_kill: dict[str, int] = {}
    for ev in spec.events:  # events are sorted by trigger index
        if ev.kind == "node_kill":
            open_kill[ev.node] = to_merged(ev.at)
        elif ev.kind == "node_restart":
            start = open_kill.pop(ev.node)
            down_spans.setdefault(ev.node, []).append((start, to_merged(ev.at)))
    for node, start in open_kill.items():
        down_spans.setdefault(node, []).append((start, n_merged))

    return _Prepared(
        merged=merged,
        labels=labels,
        admission_seed=admission_seed,
        actions=actions,
        boundaries=boundaries,
        floods=infos,
        injected=sum(f.n_injected for f in infos),
        first_divergence=min((a.index for a in actions), default=None),
        windows=windows,
        down_spans=down_spans,
    )


def _replay(
    spec: ScenarioSpec,
    prep: _Prepared,
    *,
    with_actions: bool,
    registry=None,
) -> tuple[list[_PhaseCounters], TwoTierCluster]:
    """Drive the merged trace through a fresh cluster; one counter set
    per phase (phases are the slices between ``prep.boundaries``)."""
    merged = prep.merged
    node_cap = node_capacity_bytes(spec, merged)
    dc_cap = max(1, int(spec.dc_capacity_fraction * merged.footprint_bytes))
    # Per-node admission kind, updated by rolling deploys so a restart
    # after a deploy comes back with the *deployed* model, not the
    # original one (matching a real fleet, where the image is upgraded).
    admission_kind = {name: spec.admission for name in spec.node_names}

    def fresh_node(name: str) -> CacheNode:
        return CacheNode(
            name,
            make_policy(spec.policy, node_cap),
            admission=build_admission(
                admission_kind[name], prep.labels, spec, prep.admission_seed
            ),
        )

    cluster = TwoTierCluster(
        {name: fresh_node(name) for name in spec.node_names},
        CacheNode("dc", make_policy(spec.policy, dc_cap)),
    )
    if registry is not None:
        cluster.instrument(registry)
    lat = cluster.latency
    dc = cluster.dc

    def latency_constants() -> tuple[float, float, float]:
        classified = any(
            nd.admission is not None for nd in cluster.oc_nodes.values()
        )
        return (
            lat.oc_hit(),
            lat.dc_hit(classified_oc=classified),
            lat.backend_read(classified_oc=classified, classified_dc=False),
        )

    actions = prep.actions if with_actions else []
    boundaries = prep.boundaries
    phases = [
        _PhaseCounters(
            reservoir=Reservoir(_RESERVOIR_CAPACITY, seed=spec.seed + pidx)
        )
        for pidx in range(len(boundaries) - 1)
    ]

    oids = merged.object_ids
    sizes = merged.catalog["size"][oids]
    oid_list = oids.tolist()
    size_list = sizes.tolist()
    n = len(oid_list)

    owner_memo: dict[int, tuple[str, ...]] = {}
    oc_nodes = cluster.oc_nodes
    r_live = min(spec.replication, len(oc_nodes))
    t_oc, t_dc, t_b = latency_constants()

    next_action = 0
    phase_idx = 0
    ph = phases[0]
    next_boundary = boundaries[1]
    oc_writes_mark = 0   # total OC writes (live+retired) at phase start
    dc_writes_mark = 0
    denied_mark = 0

    def close_phase() -> tuple[int, int, int]:
        totals = cluster.oc_tier_totals()
        ph.total_oc_writes = totals.files_written - oc_writes_mark
        ph.dc_writes = dc.stats.files_written - dc_writes_mark
        ph.admissions_denied = totals.admissions_denied - denied_mark
        return totals.files_written, dc.stats.files_written, totals.admissions_denied

    for i in range(n):
        if i == next_boundary:
            oc_writes_mark, dc_writes_mark, denied_mark = close_phase()
            phase_idx += 1
            ph = phases[phase_idx]
            next_boundary = boundaries[phase_idx + 1]
        while next_action < len(actions) and actions[next_action].index == i:
            a = actions[next_action]
            if a.kind == "kill":
                cluster.remove_node(a.node)
            elif a.kind == "restart":
                cluster.add_node(fresh_node(a.node))
            else:  # deploy: atomic per-node admission swap
                admission_kind[a.node] = a.admission
                live = cluster.oc_nodes.get(a.node)
                if live is not None:
                    live.admission = build_admission(
                        a.admission, prep.labels, spec, prep.admission_seed
                    )
            owner_memo.clear()
            oc_nodes = cluster.oc_nodes
            r_live = min(spec.replication, len(oc_nodes))
            t_oc, t_dc, t_b = latency_constants()
            next_action += 1

        oid = oid_list[i]
        size = size_list[i]
        owners = owner_memo.get(oid)
        if owners is None:
            owners = owner_memo[oid] = cluster.ring.lookup_n(oid, r_live)

        ph.requests += 1
        ph.bytes_requested += size
        if oc_nodes[owners[0]].request(i, oid, size):
            ph.oc_hits += 1
            ph.bytes_hit += size
            latency = t_oc
        elif dc.request(i, oid, size):
            ph.dc_hits += 1
            latency = t_dc
        else:
            ph.backend_reads += 1
            latency = t_b
        ph.reservoir.add(latency)
        for k in range(1, len(owners)):
            if oc_nodes[owners[k]].fill(i, oid, size):
                ph.replica_writes += 1

    close_phase()
    return phases, cluster


def _active_tags(prep: _Prepared, start: int, end: int) -> tuple[str, ...]:
    """Human-readable faults overlapping the phase [start, end)."""
    tags = []
    for kind, w_start, w_end in prep.windows:
        if w_start < end and start < w_end:
            tags.append(f"{kind}[{w_start},{w_end})")
    for node, spans in sorted(prep.down_spans.items()):
        for d_start, d_end in spans:
            if d_start < end and start < d_end:
                tags.append(f"{node} down")
    return tuple(tags)


def run_scenario(
    spec: ScenarioSpec,
    base_trace: Trace,
    *,
    registry=None,
    with_baseline: bool = True,
    with_oracle: bool = True,
) -> ScenarioReport:
    """Run one scenario end to end; see the module docstring for stages.

    ``with_baseline``/``with_oracle`` skip the comparison replays (each
    costs roughly one extra pass over the merged trace) for quick smoke
    runs; the full report needs both.
    """
    prep = _prepare(spec, base_trace)
    phases_raw, _cluster = _replay(
        spec, prep, with_actions=True, registry=registry
    )

    baseline_equal = True
    if with_baseline:
        baseline_raw, _ = _replay(spec, prep, with_actions=False)
    oracle_raw = (
        run_oracle(
            spec, prep.merged, prep.labels, prep.boundaries, prep.admission_seed
        )
        if with_oracle
        else None
    )

    boundaries = prep.boundaries
    phases: list[PhaseStats] = []
    for pidx, raw in enumerate(phases_raw):
        start, end = boundaries[pidx], boundaries[pidx + 1]
        active = _active_tags(prep, start, end)
        pristine = (
            prep.first_divergence is None or end <= prep.first_divergence
        )
        if with_baseline and pristine:
            baseline_equal &= raw.equal_counters(baseline_raw[pidx])
        p50, p99, p999 = (
            float(x) for x in raw.reservoir.percentile((50, 99, 99.9))
        )
        phase = PhaseStats(
            index=pidx,
            start=start,
            end=end,
            active=active,
            steady=not active,
            pristine=pristine,
            requests=raw.requests,
            oc_hits=raw.oc_hits,
            dc_hits=raw.dc_hits,
            backend_reads=raw.backend_reads,
            bytes_requested=raw.bytes_requested,
            bytes_hit=raw.bytes_hit,
            primary_writes=raw.primary_writes,
            replica_writes=raw.replica_writes,
            dc_writes=raw.dc_writes,
            admissions_denied=raw.admissions_denied,
            latency_mean=raw.reservoir.mean,
            latency_p50=p50,
            latency_p99=p99,
            latency_p999=p999,
        )
        if oracle_raw is not None:
            o = oracle_raw[pidx]
            if o["requests"]:
                phase.oracle_hit_rate = o["hits"] / o["requests"]
                phase.oracle_write_rate = o["writes"] / o["requests"]
        phases.append(phase)

    events_applied = [
        f"{a.kind}:{a.node}@{a.index}"
        + (f"->{a.admission}" if a.admission else "")
        for a in prep.actions
    ] + [
        f"hot_key_flood@{info.event.at}+{info.n_injected}req"
        for info in prep.floods
    ]

    return ScenarioReport(
        name=spec.name,
        spec=spec.to_dict(),
        phases=phases,
        base_requests=spec.requests,
        injected_requests=prep.injected,
        merged_requests=prep.merged.n_accesses,
        baseline_checked=with_baseline,
        baseline_equal=baseline_equal,
        events_applied=events_applied,
    )
