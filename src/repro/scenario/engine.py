"""The scenario replay engine: shard-aware traffic under a fault timeline.

:func:`run_scenario` takes a :class:`~repro.scenario.spec.ScenarioSpec`
and a base trace and produces a :class:`~repro.scenario.report.ScenarioReport`:

1. **Merge** — every ``hot_key_flood`` event is synthesised and
   interleaved into the base trace (:mod:`repro.scenario.flood`); all
   later event triggers are converted from base- to merged-trace indices
   through the composed displacement map.
2. **Replay** — requests route through a
   :class:`~repro.cluster.cluster.TwoTierCluster` with replication factor
   ``spec.replication``: :meth:`~repro.cluster.hashing.ConsistentHashRing.lookup_n`
   names the owners, the *primary* serves the request (so request-flow
   counters match the unreplicated :func:`~repro.cluster.cluster.simulate_cluster`
   exactly in steady state), and the secondaries take a write-through
   :meth:`~repro.cluster.node.CacheNode.fill` that keeps warm standby
   copies for failover.  Kills, restarts and per-node rolling-deploy
   admission swaps fire between requests at their trigger indices.
3. **Baseline** — the same merged trace replays once more with the event
   timeline stripped; phases that end before the first fault must match
   it with exact counter equality (checked, reported, and asserted by the
   test suite).
4. **Oracle** — :func:`~repro.scenario.oracle.run_oracle` replays the
   merged trace through one aggregate-capacity cache and the per-phase
   hit/write gap is attached to each phase.

Determinism: one ``numpy.random.Generator`` seeded from ``spec.seed``
drives flood synthesis and the admission-noise seed; phase latency
reservoirs are seeded from ``spec.seed`` too.  Two runs of the same spec
over the same trace produce byte-identical reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.simulator import make_policy
from repro.cluster.cluster import TwoTierCluster
from repro.cluster.node import CacheNode
from repro.core.labeling import one_time_labels
from repro.obs.ledger import WriteLedger
from repro.obs.registry import Reservoir
from repro.scenario.flood import FloodInfo, apply_floods
from repro.scenario.oracle import build_admission, node_capacity_bytes, run_oracle
from repro.scenario.report import PhaseStats, ScenarioReport
from repro.scenario.spec import ScenarioSpec
from repro.trace.records import Trace

__all__ = ["run_scenario"]

#: Latency samples retained per phase (Vitter reservoir; exact until then).
_RESERVOIR_CAPACITY = 10_000


@dataclass(frozen=True)
class _Action:
    """One engine-visible state change, in merged-trace coordinates."""

    index: int      # fires just before this merged request is served
    seq: int        # tie-break: spec order
    kind: str       # "kill" | "restart" | "deploy"
    node: str
    admission: str | None = None  # deploy target


@dataclass
class _Prepared:
    """Everything derived from (spec, trace) before any replay runs."""

    merged: Trace
    labels: np.ndarray
    admission_seed: int
    actions: list[_Action]
    boundaries: list[int]
    floods: list[FloodInfo]
    injected: int
    first_divergence: int | None    # merged index of the first action
    windows: list[tuple[str, int, int]]   # (kind, start, end) merged coords
    down_spans: dict[str, list[tuple[int, int]]]  # node → [(start, end))
    flood_mask: np.ndarray          # merged request injected by a flood?
    first_seen: np.ndarray          # merged index of each oid's first access


@dataclass
class _PhaseCounters:
    requests: int = 0
    oc_hits: int = 0
    dc_hits: int = 0
    backend_reads: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    total_oc_writes: int = 0    # boundary delta of live+retired writes
    replica_writes: int = 0
    dc_writes: int = 0
    admissions_denied: int = 0
    # Ledger deltas (main replay only; the baseline carries no ledger).
    writes_by_cause: dict[str, int] | None = None
    avoided_writes: int = 0
    avoided_bytes: int = 0
    reservoir: Reservoir = field(
        default_factory=lambda: Reservoir(_RESERVOIR_CAPACITY)
    )

    @property
    def primary_writes(self) -> int:
        return self.total_oc_writes - self.replica_writes

    def equal_counters(self, other: "_PhaseCounters") -> bool:
        return (
            self.requests == other.requests
            and self.oc_hits == other.oc_hits
            and self.dc_hits == other.dc_hits
            and self.backend_reads == other.backend_reads
            and self.bytes_requested == other.bytes_requested
            and self.bytes_hit == other.bytes_hit
            and self.total_oc_writes == other.total_oc_writes
            and self.replica_writes == other.replica_writes
            and self.dc_writes == other.dc_writes
            and self.admissions_denied == other.admissions_denied
        )


def _truncate(trace: Trace, n: int) -> Trace:
    if trace.n_accesses < n:
        raise ValueError(
            f"trace has {trace.n_accesses:,} requests; "
            f"the scenario needs {n:,}"
        )
    if trace.n_accesses == n:
        return trace
    return Trace(
        accesses=np.ascontiguousarray(trace.accesses[:n]),
        catalog=trace.catalog,
        owner_active_friends=trace.owner_active_friends,
        owner_avg_views=trace.owner_avg_views,
        duration=trace.duration,
        viral_mask=trace.viral_mask,
    )


def _prepare(spec: ScenarioSpec, base_trace: Trace) -> _Prepared:
    rng = np.random.default_rng(spec.seed)
    base = _truncate(base_trace, spec.requests)
    floods = [e for e in spec.events if e.kind == "hot_key_flood"]
    merged, index_map, infos = apply_floods(base, floods, rng)
    labels = one_time_labels(merged.object_ids, spec.m_window)
    admission_seed = int(rng.integers(0, 2**63 - 1))
    n_merged = merged.n_accesses
    # Provenance inputs for the write ledger: a merged position is
    # flood-injected iff it is *not* the image of a base position, and an
    # access re-warms a restarted node iff its oid was first requested
    # before that node's restart index.
    flood_mask = np.ones(n_merged, dtype=bool)
    flood_mask[index_map] = False
    _, first_idx, inverse = np.unique(
        merged.object_ids, return_index=True, return_inverse=True
    )
    first_seen = first_idx[inverse]

    def to_merged(i: int) -> int:
        return int(index_map[i]) if i < spec.requests else n_merged

    actions: list[_Action] = []
    seq = 0
    for ev in spec.events:
        if ev.kind == "node_kill":
            actions.append(_Action(to_merged(ev.at), seq, "kill", ev.node))
        elif ev.kind == "node_restart":
            actions.append(_Action(to_merged(ev.at), seq, "restart", ev.node))
        elif ev.kind == "rolling_deploy":
            # Staggered swap: node j of k flips at at + j*length//k, in
            # name order — the whole fleet converges inside the window.
            for j, name in enumerate(spec.node_names):
                at = ev.at + (j * ev.length) // spec.nodes
                actions.append(
                    _Action(to_merged(at), seq, "deploy", name, ev.admission)
                )
        seq += 1
    actions.sort(key=lambda a: (a.index, a.seq))

    bounds = {0, n_merged}
    for ev in spec.events:
        bounds.add(to_merged(ev.at))
        if ev.length:
            bounds.add(to_merged(ev.end))
    boundaries = sorted(bounds)

    windows = [
        (ev.kind, to_merged(ev.at), to_merged(ev.end))
        for ev in spec.events
        if ev.length
    ]
    down_spans: dict[str, list[tuple[int, int]]] = {}
    open_kill: dict[str, int] = {}
    for ev in spec.events:  # events are sorted by trigger index
        if ev.kind == "node_kill":
            open_kill[ev.node] = to_merged(ev.at)
        elif ev.kind == "node_restart":
            start = open_kill.pop(ev.node)
            down_spans.setdefault(ev.node, []).append((start, to_merged(ev.at)))
    for node, start in open_kill.items():
        down_spans.setdefault(node, []).append((start, n_merged))

    return _Prepared(
        merged=merged,
        labels=labels,
        admission_seed=admission_seed,
        actions=actions,
        boundaries=boundaries,
        floods=infos,
        injected=sum(f.n_injected for f in infos),
        first_divergence=min((a.index for a in actions), default=None),
        windows=windows,
        down_spans=down_spans,
        flood_mask=flood_mask,
        first_seen=first_seen,
    )


def _replay(
    spec: ScenarioSpec,
    prep: _Prepared,
    *,
    with_actions: bool,
    registry=None,
    ledger: WriteLedger | None = None,
    tracer=None,
) -> tuple[list[_PhaseCounters], TwoTierCluster]:
    """Drive the merged trace through a fresh cluster; one counter set
    per phase (phases are the slices between ``prep.boundaries``).

    ``ledger`` attaches write provenance: every node built here (initial
    fleet, restarts, the DC tier) is bound to it, the router stamps each
    request's cause before serving it, and :func:`close_phase` folds the
    per-cause deltas into the phase counters.  ``tracer`` records one
    wall-clock span per phase (plus a ``replay`` root) for Chrome-trace
    export; neither touches the replayed counters, so the baseline pass
    simply omits both.
    """
    merged = prep.merged
    node_cap = node_capacity_bytes(spec, merged)
    dc_cap = max(1, int(spec.dc_capacity_fraction * merged.footprint_bytes))
    # Per-node admission kind, updated by rolling deploys so a restart
    # after a deploy comes back with the *deployed* model, not the
    # original one (matching a real fleet, where the image is upgraded).
    admission_kind = {name: spec.admission for name in spec.node_names}

    def fresh_node(name: str, restarted_at: int | None = None) -> CacheNode:
        node = CacheNode(
            name,
            make_policy(spec.policy, node_cap),
            admission=build_admission(
                admission_kind[name], prep.labels, spec, prep.admission_seed
            ),
        )
        if ledger is not None:
            node.bind_ledger(
                ledger,
                model_label=admission_kind[name],
                restarted_at=restarted_at,
            )
        return node

    cluster = TwoTierCluster(
        {name: fresh_node(name) for name in spec.node_names},
        CacheNode("dc", make_policy(spec.policy, dc_cap)),
    )
    if ledger is not None:
        # The DC tier has no admission model; its writes are labelled by
        # tier so per-model breakdowns stay about the OC classifiers.
        cluster.dc.bind_ledger(ledger, model_label="dc")
    if registry is not None:
        cluster.instrument(registry)
    lat = cluster.latency
    dc = cluster.dc

    def latency_constants() -> tuple[float, float, float]:
        classified = any(
            nd.admission is not None for nd in cluster.oc_nodes.values()
        )
        return (
            lat.oc_hit(),
            lat.dc_hit(classified_oc=classified),
            lat.backend_read(classified_oc=classified, classified_dc=False),
        )

    actions = prep.actions if with_actions else []
    boundaries = prep.boundaries
    phases = [
        _PhaseCounters(
            reservoir=Reservoir(_RESERVOIR_CAPACITY, seed=spec.seed + pidx)
        )
        for pidx in range(len(boundaries) - 1)
    ]

    oids = merged.object_ids
    sizes = merged.catalog["size"][oids]
    oid_list = oids.tolist()
    size_list = sizes.tolist()
    n = len(oid_list)

    owner_memo: dict[int, tuple[str, ...]] = {}
    oc_nodes = cluster.oc_nodes
    r_live = min(spec.replication, len(oc_nodes))
    t_oc, t_dc, t_b = latency_constants()

    flood_list = prep.flood_mask.tolist() if ledger is not None else None
    first_seen_list = prep.first_seen.tolist() if ledger is not None else None

    tracing = tracer is not None and tracer.enabled
    span_track = tracer.new_track() if tracing else None
    t_replay0 = time.perf_counter_ns() if tracing else 0
    t_phase0 = t_replay0

    next_action = 0
    phase_idx = 0
    ph = phases[0]
    next_boundary = boundaries[1]
    oc_writes_mark = 0   # total OC writes (live+retired) at phase start
    dc_writes_mark = 0
    denied_mark = 0
    ledger_mark = ledger.checkpoint() if ledger is not None else None

    def close_phase() -> tuple[int, int, int]:
        nonlocal ledger_mark, t_phase0
        totals = cluster.oc_tier_totals()
        ph.total_oc_writes = totals.files_written - oc_writes_mark
        ph.dc_writes = dc.stats.files_written - dc_writes_mark
        ph.admissions_denied = totals.admissions_denied - denied_mark
        if ledger is not None:
            d = ledger.delta(ledger_mark)
            ph.writes_by_cause = d["writes_by_cause"]
            ph.avoided_writes = d["avoided_writes"]
            ph.avoided_bytes = d["avoided_bytes"]
            ledger_mark = ledger.checkpoint()
        if tracing:
            now = time.perf_counter_ns()
            tracer.add(
                f"phase{phase_idx}", "scenario", t_phase0, now,
                track=span_track,
                args={
                    "start": boundaries[phase_idx],
                    "end": boundaries[phase_idx + 1],
                    "requests": ph.requests,
                },
            )
            t_phase0 = now
        return totals.files_written, dc.stats.files_written, totals.admissions_denied

    for i in range(n):
        if i == next_boundary:
            oc_writes_mark, dc_writes_mark, denied_mark = close_phase()
            phase_idx += 1
            ph = phases[phase_idx]
            next_boundary = boundaries[phase_idx + 1]
        while next_action < len(actions) and actions[next_action].index == i:
            a = actions[next_action]
            if a.kind == "kill":
                cluster.remove_node(a.node)
            elif a.kind == "restart":
                cluster.add_node(fresh_node(a.node, restarted_at=i))
            else:  # deploy: atomic per-node admission swap
                admission_kind[a.node] = a.admission
                live = cluster.oc_nodes.get(a.node)
                if live is not None:
                    live.admission = build_admission(
                        a.admission, prep.labels, spec, prep.admission_seed
                    )
                    live.model_label = a.admission
            owner_memo.clear()
            oc_nodes = cluster.oc_nodes
            r_live = min(spec.replication, len(oc_nodes))
            t_oc, t_dc, t_b = latency_constants()
            next_action += 1

        oid = oid_list[i]
        size = size_list[i]
        owners = owner_memo.get(oid)
        if owners is None:
            owners = owner_memo[oid] = cluster.ring.lookup_n(oid, r_live)

        primary = oc_nodes[owners[0]]
        if ledger is not None:
            # Stamp this request's provenance before it can insert.  Flood
            # wins (the request would not exist without the injection);
            # then rewarm (first seen before the primary's cold restart —
            # the cluster already paid this object's flash cost once);
            # replica fills stay `replica_fill` inside fill() itself.
            if flood_list[i]:
                cause = "flood"
            elif (
                primary.restarted_at is not None
                and first_seen_list[i] < primary.restarted_at
            ):
                cause = "rewarm_after_restart"
            else:
                cause = "admission_accept"
            primary.write_cause = cause
            dc.write_cause = "flood" if flood_list[i] else "admission_accept"

        ph.requests += 1
        ph.bytes_requested += size
        if primary.request(i, oid, size):
            ph.oc_hits += 1
            ph.bytes_hit += size
            latency = t_oc
        elif dc.request(i, oid, size):
            ph.dc_hits += 1
            latency = t_dc
        else:
            ph.backend_reads += 1
            latency = t_b
        ph.reservoir.add(latency)
        for k in range(1, len(owners)):
            if oc_nodes[owners[k]].fill(i, oid, size):
                ph.replica_writes += 1

    close_phase()
    if tracing:
        tracer.add(
            "replay", "scenario", t_replay0, time.perf_counter_ns(),
            track=span_track,
            args={"requests": n, "phases": len(phases)},
        )
    return phases, cluster


def _active_tags(prep: _Prepared, start: int, end: int) -> tuple[str, ...]:
    """Human-readable faults overlapping the phase [start, end)."""
    tags = []
    for kind, w_start, w_end in prep.windows:
        if w_start < end and start < w_end:
            tags.append(f"{kind}[{w_start},{w_end})")
    for node, spans in sorted(prep.down_spans.items()):
        for d_start, d_end in spans:
            if d_start < end and start < d_end:
                tags.append(f"{node} down")
    return tuple(tags)


def run_scenario(
    spec: ScenarioSpec,
    base_trace: Trace,
    *,
    registry=None,
    with_baseline: bool = True,
    with_oracle: bool = True,
    tracer=None,
) -> ScenarioReport:
    """Run one scenario end to end; see the module docstring for stages.

    ``with_baseline``/``with_oracle`` skip the comparison replays (each
    costs roughly one extra pass over the merged trace) for quick smoke
    runs; the full report needs both.  ``tracer`` (a
    :class:`~repro.obs.spans.Tracer`) records per-phase wall-clock spans
    of the main replay for Chrome-trace export.

    The main replay always carries a :class:`~repro.obs.ledger.WriteLedger`;
    its provenance section lands in ``report.ledger`` with an ``exact``
    flag asserting the per-cause totals sum to the cluster's own SSD
    write counters (retired incarnations included).
    """
    prep = _prepare(spec, base_trace)
    ledger = WriteLedger(registry=registry)
    phases_raw, _cluster = _replay(
        spec, prep, with_actions=True, registry=registry,
        ledger=ledger, tracer=tracer,
    )

    baseline_equal = True
    if with_baseline:
        baseline_raw, _ = _replay(spec, prep, with_actions=False)
    oracle_raw = (
        run_oracle(
            spec, prep.merged, prep.labels, prep.boundaries, prep.admission_seed
        )
        if with_oracle
        else None
    )

    boundaries = prep.boundaries
    phases: list[PhaseStats] = []
    for pidx, raw in enumerate(phases_raw):
        start, end = boundaries[pidx], boundaries[pidx + 1]
        active = _active_tags(prep, start, end)
        pristine = (
            prep.first_divergence is None or end <= prep.first_divergence
        )
        if with_baseline and pristine:
            baseline_equal &= raw.equal_counters(baseline_raw[pidx])
        p50, p99, p999 = (
            float(x) for x in raw.reservoir.percentile((50, 99, 99.9))
        )
        phase = PhaseStats(
            index=pidx,
            start=start,
            end=end,
            active=active,
            steady=not active,
            pristine=pristine,
            requests=raw.requests,
            oc_hits=raw.oc_hits,
            dc_hits=raw.dc_hits,
            backend_reads=raw.backend_reads,
            bytes_requested=raw.bytes_requested,
            bytes_hit=raw.bytes_hit,
            primary_writes=raw.primary_writes,
            replica_writes=raw.replica_writes,
            dc_writes=raw.dc_writes,
            admissions_denied=raw.admissions_denied,
            writes_by_cause=raw.writes_by_cause,
            avoided_writes=raw.avoided_writes,
            avoided_bytes=raw.avoided_bytes,
            latency_mean=raw.reservoir.mean,
            latency_p50=p50,
            latency_p99=p99,
            latency_p999=p999,
        )
        if oracle_raw is not None:
            o = oracle_raw[pidx]
            if o["requests"]:
                phase.oracle_hit_rate = o["hits"] / o["requests"]
                phase.oracle_write_rate = o["writes"] / o["requests"]
        phases.append(phase)

    events_applied = [
        f"{a.kind}:{a.node}@{a.index}"
        + (f"->{a.admission}" if a.admission else "")
        for a in prep.actions
    ] + [
        f"hot_key_flood@{info.event.at}+{info.n_injected}req"
        for info in prep.floods
    ]

    # Provenance section + the exactness invariant: the ledger must sum
    # (integer equality) to every SSD write the cluster counted, retired
    # node incarnations included.
    totals = _cluster.oc_tier_totals()
    cluster_ssd_writes = totals.files_written + _cluster.dc.stats.files_written
    ledger_section = ledger.snapshot()
    ledger_section["cluster_ssd_writes"] = cluster_ssd_writes
    ledger_section["exact"] = ledger.total_writes == cluster_ssd_writes

    return ScenarioReport(
        name=spec.name,
        spec=spec.to_dict(),
        phases=phases,
        base_requests=spec.requests,
        injected_requests=prep.injected,
        merged_requests=prep.merged.n_accesses,
        baseline_checked=with_baseline,
        baseline_equal=baseline_equal,
        events_applied=events_applied,
        ledger=ledger_section,
    )
