"""Hot-key flood synthesis: one viral owner's album slams the cluster.

A ``hot_key_flood`` event injects a burst of extra requests for a small
set of brand-new photos, all owned by a single (very popular) new owner —
the flash-crowd pattern the paper's §3.2 workload model motivates: a photo
goes viral, every request for it hashes to the *same* OC shard, and that
node absorbs a disproportionate load while its neighbours idle.

The burst is built as a miniature :class:`~repro.trace.records.Trace` and
merged into the base trace with
:func:`~repro.trace.mixer.interleave_traces`, so the flood flows through
the exact same schema, simulators and labellers as organic traffic.
Merging shifts base-request positions; :func:`apply_floods` therefore
returns an **index map** (base position → merged position) that the
engine uses to convert every later event trigger and phase boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scenario.spec import EventSpec
from repro.trace.catalog import generate_catalog
from repro.trace.mixer import interleave_traces
from repro.trace.owners import generate_owners
from repro.trace.records import ACCESS_DTYPE, Trace

__all__ = ["FloodInfo", "make_flood_trace", "apply_floods"]

#: Viral-owner boost applied to the sampled owner's observable features —
#: the flood owner should read as a celebrity to the feature extractor.
_OWNER_BOOST = 50.0

#: Zipf-ish exponent for the per-photo request weights: a couple of photos
#: in the album take most of the burst.
_ZIPF_S = 0.8

#: Beta(a, b) shape of request times inside the window — front-loaded, the
#: canonical flash-crowd ramp (sharp onset, long tail).
_BURST_SHAPE = (0.7, 1.6)


@dataclass(frozen=True)
class FloodInfo:
    """Where one flood landed after merging."""

    event: EventSpec
    n_injected: int            # extra requests merged in
    first_object_id: int       # flood photos occupy [first, first+n_photos)
    n_photos: int
    owner_id: int              # merged-trace id of the viral owner
    window: tuple[float, float]  # [t0, t1) in trace seconds


def make_flood_trace(
    base: Trace, event: EventSpec, rng: np.random.Generator
) -> Trace:
    """Build the miniature burst trace for one ``hot_key_flood`` event.

    The window ``[event.at, event.end)`` is interpreted in base-trace
    request indices; its timestamps bound the burst.  ``event.intensity``
    scales the injected volume: ``round(intensity * length)`` requests.
    """
    if event.kind != "hot_key_flood":
        raise ValueError(f"not a flood event: {event.kind!r}")
    ts = base.timestamps
    if event.end > ts.shape[0]:
        raise ValueError("flood window exceeds the base trace")
    t0 = float(ts[event.at])
    t1 = float(ts[event.end - 1])
    n_requests = max(1, int(round(event.intensity * event.length)))

    # One brand-new owner, boosted into celebrity territory so the social
    # features (§3.2.1) see what production would see during a viral spike.
    owner = generate_owners(1, rng)
    owner.avg_views *= _OWNER_BOOST
    owner.active_friends = (owner.active_friends + 1) * int(_OWNER_BOOST)

    catalog = generate_catalog(
        event.photos, owner, base.duration, rng, pre_trace_fraction=0.0
    )
    # The album uploads moments before the burst starts — viral photos are
    # fresh photos (recency is the workload's dominant popularity signal).
    lead = max(1.0, 0.01 * max(t1 - t0, 1.0))
    catalog["upload_time"] = rng.uniform(t0 - lead, t0, size=event.photos)

    # Zipf-ish album skew: photo k gets weight 1/(k+1)^s.
    weights = 1.0 / np.arange(1, event.photos + 1, dtype=np.float64) ** _ZIPF_S
    weights /= weights.sum()

    accesses = np.empty(n_requests, dtype=ACCESS_DTYPE)
    accesses["object_id"] = rng.choice(event.photos, size=n_requests, p=weights)
    burst = rng.beta(*_BURST_SHAPE, size=n_requests)
    stamps = t0 + burst * max(t1 - t0, 1e-9)
    stamps.sort()
    accesses["timestamp"] = stamps
    accesses["terminal"] = (rng.random(n_requests) < 0.5).astype(np.int8)
    order = np.argsort(accesses["timestamp"], kind="stable")
    accesses = np.ascontiguousarray(accesses[order])

    return Trace(
        accesses=accesses,
        catalog=catalog,
        owner_active_friends=owner.active_friends,
        owner_avg_views=owner.avg_views,
        duration=base.duration,
        viral_mask=np.ones(event.photos, dtype=bool),
    )


def _merge_one(
    current: Trace, flood: Trace, event: EventSpec
) -> tuple[Trace, np.ndarray, FloodInfo]:
    """Interleave one flood into ``current``; map current→merged positions.

    ``interleave_traces`` merge-sorts with a *stable* argsort over
    ``concat([current, flood])``, so at equal timestamps every ``current``
    access precedes every flood access.  A ``current`` access at position
    ``i`` is therefore displaced by exactly the number of flood accesses
    with a strictly smaller timestamp.
    """
    id_offset = current.n_objects
    owner_offset = current.owner_avg_views.shape[0]
    merged = interleave_traces(current, flood)
    flood_ts = flood.timestamps  # already sorted
    index_map = np.arange(current.n_accesses, dtype=np.int64) + np.searchsorted(
        flood_ts, current.timestamps, side="left"
    )
    info = FloodInfo(
        event=event,
        n_injected=flood.n_accesses,
        first_object_id=id_offset,
        n_photos=flood.n_objects,
        owner_id=owner_offset,  # flood trace has exactly one owner
        window=(float(flood.timestamps[0]), float(flood.timestamps[-1])),
    )
    return merged, index_map, info


def apply_floods(
    base: Trace, events: list[EventSpec], rng: np.random.Generator
) -> tuple[Trace, np.ndarray, list[FloodInfo]]:
    """Inject every flood event; return the merged trace and the base map.

    ``index_map[i]`` is the merged-trace position of base request ``i``
    (identity when ``events`` is empty).  Floods are injected one at a
    time with the displacement maps composed, so any number of
    (non-overlapping) flood windows compose correctly.
    """
    index_map = np.arange(base.n_accesses, dtype=np.int64)
    current = base
    infos: list[FloodInfo] = []
    for event in events:
        flood = make_flood_trace(base, event, rng)
        current, step_map, info = _merge_one(current, flood, event)
        index_map = step_map[index_map]
        infos.append(info)
    return current, index_map, infos
