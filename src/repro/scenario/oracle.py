"""Single-node oracle comparator: how much did the faults actually cost?

A scenario's hit and write rates conflate two things: the workload (hard
phases are hard everywhere) and the cluster's condition (a cold restarted
node loses hits the workload alone would not).  To separate them the
comparator replays the *same merged trace* through one idealised cache of
the cluster's **aggregate** OC capacity — no sharding, no failures, same
replacement policy, same initial admission configuration — and reports
per-phase hit and write rates on the same phase boundaries.

The per-phase **gap** (cluster − oracle) is then the cost of distribution
plus faults: near zero in healthy steady state (sharding splits a
uniform workload almost losslessly), dipping when a fault is active.  CI
tracks the gap over time (``benchmarks/bench_trend.py``): a commit that
widens it regressed failover behaviour, not the workload.

The replay mirrors :func:`repro.cache.simulator.simulate`'s admission
branch exactly (``access_if_present`` then ``access(..., admit=ok)``), so
oracle rates are directly comparable with every single-node figure in the
repo.
"""

from __future__ import annotations

import numpy as np

from repro.cache.base import AdmissionPolicy
from repro.cache.simulator import make_policy
from repro.core.admission import NoisyOracleAdmission, OracleAdmission
from repro.scenario.spec import ScenarioSpec
from repro.trace.records import Trace

__all__ = ["build_admission", "node_capacity_bytes", "run_oracle"]


def build_admission(
    kind: str | None,
    labels: np.ndarray,
    spec: ScenarioSpec,
    seed: int,
) -> AdmissionPolicy | None:
    """Instantiate one admission filter for a scenario replay.

    All instances built with the same ``seed`` issue identical verdicts
    (the noisy oracle draws its label flips once, from that seed), which
    is what keeps the scenario, its failure-free baseline, and this
    comparator bit-comparable.
    """
    if kind is None or kind == "none":
        return None
    if kind == "oracle":
        return OracleAdmission(labels)
    if kind == "noisy":
        return NoisyOracleAdmission(
            labels,
            fn_rate=spec.noisy_fn_rate,
            fp_rate=spec.noisy_fp_rate,
            rng=seed,
        )
    raise ValueError(f"unknown admission kind {kind!r}")


def node_capacity_bytes(spec: ScenarioSpec, trace: Trace) -> int:
    """Per-OC-node cache capacity for a given (merged) trace."""
    return max(1, int(spec.oc_capacity_fraction * trace.footprint_bytes))


def run_oracle(
    spec: ScenarioSpec,
    merged: Trace,
    labels: np.ndarray,
    boundaries: list[int],
    admission_seed: int,
) -> list[dict]:
    """Replay ``merged`` through one aggregate-capacity cache.

    Returns one ``{"requests", "hits", "writes"}`` dict per phase (the
    slices between consecutive ``boundaries``).
    """
    capacity = spec.nodes * node_capacity_bytes(spec, merged)
    policy = make_policy(spec.policy, capacity)
    admission = build_admission(spec.admission, labels, spec, admission_seed)

    oids = merged.object_ids
    sizes = merged.catalog["size"][oids]
    oid_list = oids.tolist()
    size_list = sizes.tolist()

    access = policy.access
    if admission is not None:
        should_admit = admission.should_admit
        on_hit = admission.on_hit
        access_if_present = policy.access_if_present

    phases: list[dict] = []
    for lo, hi in zip(boundaries, boundaries[1:]):
        hits = writes = 0
        if admission is None:
            for i in range(lo, hi):
                result = access(oid_list[i], size_list[i])
                if result.hit:
                    hits += 1
                elif result.inserted:
                    writes += 1
        else:
            for i in range(lo, hi):
                oid = oid_list[i]
                size = size_list[i]
                result = access_if_present(oid, size)
                if result is not None:
                    on_hit(i, oid, size)
                    hits += 1
                    continue
                ok = should_admit(i, oid, size)
                result = access(oid, size, admit=ok)
                if result.inserted:
                    writes += 1
        phases.append({"requests": hi - lo, "hits": hits, "writes": writes})
    return phases
