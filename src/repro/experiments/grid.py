"""The paper's evaluation grid, with optional process-level parallelism.

Figures 6–10 need a grid of simulations: for every capacity, the four
configurations of five replacement policies.  Per capacity the expensive
intermediate state — the criterion solve, oracle labels, and the daily
classifier training — is *shared* across policies (the paper uses one
LRU-family criterion; LIRS gets the ``M·R_s`` variant), so the natural
unit of work is a **capacity block**.

Blocks are independent, which makes the grid embarrassingly parallel:
:meth:`GridRunner.precompute` fans blocks out over a
``concurrent.futures.ProcessPoolExecutor``.  The trace's columnar arrays,
the memoised :class:`~repro.cache.segments.SegmentPlan`, the feature matrix
and the re-access distances travel through
:class:`~repro.experiments.shm.SharedTraceBuffer` — workers receive a
compact handle and rehydrate zero-copy NumPy views, so ``fork``, ``spawn``
and ``forkserver`` all fan out without serialising the access arrays;
results travel back as plain dataclasses.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.cache.segments import SegmentPlan
from repro.cache.simulator import (
    SimulationResult,
    make_policy,
    simulate,
)
from repro.config import paper_capacity_fractions, paper_equivalent_bytes
from repro.core.admission import AlwaysAdmit, ClassifierAdmission, OracleAdmission
from repro.core.criteria import solve_criteria
from repro.core.features import extract_features
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import train_daily_classifier
from repro.experiments.shm import SharedTraceBuffer, SharedTraceHandle
from repro.ml.cost_sensitive import select_cost_v
from repro.trace.records import Trace

__all__ = [
    "POLICIES",
    "CONFIGS",
    "START_METHOD_ENV",
    "CapacityBlock",
    "GridPoint",
    "GridRunner",
    "format_sweep_table",
    "resolve_start_method",
]

#: Environment override for the pool start method (CI exercises the
#: non-fork path by exporting ``REPRO_START_METHOD=spawn``).
START_METHOD_ENV = "REPRO_START_METHOD"

#: ``precompute(start_method="inline")`` computes serially in-process.
INLINE = "inline"


def resolve_start_method(start_method: str | None = None) -> str | None:
    """Validate and resolve the worker start method.

    Explicit argument wins, then :data:`START_METHOD_ENV`, then ``None``
    (the platform's default multiprocessing context).  Accepts ``"inline"``
    and any method in :func:`multiprocessing.get_all_start_methods`.
    """
    method = start_method or os.environ.get(START_METHOD_ENV) or None
    if method is None:
        return None
    available = {INLINE, *multiprocessing.get_all_start_methods()}
    if method not in available:
        raise ValueError(
            f"unknown start method {method!r}; choose from {sorted(available)}"
        )
    return method

POLICIES = ("lru", "fifo", "s3lru", "arc", "lirs")
CONFIGS = ("original", "proposal", "ideal", "belady")

#: The paper's 12 GB cost-matrix boundary as a fraction of its footprint.
_COST_BOUNDARY_FRACTION = 12.0 / (14e6 * 32 * 1024 / 2**30)


@dataclass
class GridPoint:
    """All four configurations at one (policy, capacity) point."""

    policy: str
    capacity_bytes: int
    paper_gb: float
    results: dict = field(default_factory=dict)   # config -> SimulationResult
    classifier_metrics: dict = field(default_factory=dict)

    def rate(self, config: str, metric: str) -> float:
        return getattr(self.results[config], metric)


@dataclass
class CapacityBlock:
    """Everything computed for one capacity, all policies included.

    Exposed through :meth:`GridRunner.block` so downstream analyses (e.g.
    the Fig.-5 per-day classification tables and the ablation benchmarks)
    can reuse the criteria/labels/training without recomputation.
    """

    capacity_bytes: int
    cost_v: float
    criteria: object            # Criteria (LRU-family)
    lirs_criteria: object       # Criteria with M·R_s
    labels: object              # np.ndarray of one-time labels
    lirs_labels: object
    training: object            # DailyTrainingResult
    lirs_training: object
    belady: SimulationResult
    originals: dict             # policy -> SimulationResult
    proposals: dict
    ideals: dict


# Module-level worker state, populated *explicitly* by the pool initializer
# from the shared-memory handle.  Nothing here is assumed to be inherited:
# under spawn/forkserver this module is re-imported with an empty _WORKER
# and an empty SegmentPlan trace-cache, so the initializer must rebuild
# every piece (the latent fork-only assumption the shm layer removes).
_WORKER: dict = {}


def _worker_init(
    handle: SharedTraceHandle, policies: tuple[str, ...], use_segments: bool
) -> None:
    """Attach the shared trace state in a fresh (or forked) worker.

    The buffer's arrays are zero-copy views into the parent's shared-memory
    blocks; the ``SegmentPlan`` (when the grid batches segments) arrives
    pre-installed on the rehydrated trace, so ``simulate`` finds it through
    ``SegmentPlan.for_trace`` without re-running the Fenwick pass.  The
    buffer object is kept alive in ``_WORKER`` for the process lifetime —
    its finalizer unmaps the blocks at worker exit (never unlinking: the
    parent owns the segments).
    """
    buffer = SharedTraceBuffer.attach(handle)
    _WORKER.clear()
    _WORKER["buffer"] = buffer
    _WORKER["trace"] = buffer.trace
    _WORKER["policies"] = tuple(policies)
    _WORKER["use_segments"] = use_segments
    _WORKER["distances"] = (
        buffer.distances
        if buffer.distances is not None
        else reaccess_distances(buffer.trace.object_ids)
    )
    _WORKER["features"] = (
        buffer.features
        if buffer.features is not None
        else extract_features(buffer.trace)
    )


def _compute_block_impl(
    trace: Trace,
    policies,
    distances,
    features,
    cap: int,
    training_rng: int,
    use_segments: bool = True,
) -> CapacityBlock:
    mean_size = trace.mean_object_size()
    footprint = trace.footprint_bytes

    originals = {
        p: simulate(
            trace,
            make_policy(p, cap),
            admission=AlwaysAdmit(),
            policy_name=p,
            use_segments=use_segments,
        )
        for p in policies
    }
    lru_hit = (
        originals["lru"].hit_rate
        if "lru" in originals
        else next(iter(originals.values())).hit_rate
    )
    criteria = solve_criteria(distances, cap, mean_size, hit_rate=lru_hit)
    cost_v = select_cost_v(
        cap, boundary_bytes=_COST_BOUNDARY_FRACTION * footprint
    )

    def build(crit):
        labels = one_time_labels(trace.object_ids, crit.m_threshold)
        training = train_daily_classifier(
            trace, features, labels, cost_v=cost_v, rng=training_rng
        )
        return labels, training

    labels, training = build(criteria)
    lirs_criteria = criteria.for_lirs(make_policy("lirs", cap).rs)
    if "lirs" in policies:
        lirs_labels, lirs_training = build(lirs_criteria)
    else:
        lirs_labels, lirs_training = labels, training

    proposals = {}
    ideals = {}
    for p in policies:
        crit = lirs_criteria if p == "lirs" else criteria
        lab = lirs_labels if p == "lirs" else labels
        tr = lirs_training if p == "lirs" else training
        proposals[p] = simulate(
            trace,
            make_policy(p, cap),
            admission=ClassifierAdmission.from_criteria(tr.predictions, crit),
            policy_name=p,
            use_segments=use_segments,
        )
        ideals[p] = simulate(
            trace, make_policy(p, cap), admission=OracleAdmission(lab),
            policy_name=p, use_segments=use_segments,
        )

    return CapacityBlock(
        capacity_bytes=cap,
        cost_v=cost_v,
        criteria=criteria,
        lirs_criteria=lirs_criteria,
        labels=labels,
        lirs_labels=lirs_labels,
        training=training,
        lirs_training=lirs_training,
        belady=simulate(
            trace, make_policy("belady", cap, trace), policy_name="belady",
            use_segments=use_segments,
        ),
        originals=originals,
        proposals=proposals,
        ideals=ideals,
    )


def _compute_block_worker(cap: int, training_rng: int) -> CapacityBlock:
    """Pool entry point: uses the initializer-provided shared state."""
    return _compute_block_impl(
        _WORKER["trace"],
        _WORKER["policies"],
        _WORKER["distances"],
        _WORKER["features"],
        cap,
        training_rng,
        _WORKER["use_segments"],
    )


class GridRunner:
    """Lazily-memoised evaluation grid over (policy, capacity) points.

    Parameters
    ----------
    trace:
        The workload to evaluate.
    fractions:
        Capacity axis as fractions of the trace footprint; defaults to the
        paper's 2–20 GB sweep mapped through
        :func:`repro.config.paper_capacity_fractions`.
    policies:
        Replacement policies to cover (default: the paper's five).
    training_rng:
        Seed for the daily-training runs (kept fixed so points are
        reproducible regardless of evaluation order).
    use_segments:
        Route guaranteed-hit runs through the vectorised
        :meth:`~repro.cache.base.CachePolicy.access_batch` path (default).
        Results are bit-identical either way — the flag exists for parity
        tests and micro-benchmarks.
    """

    def __init__(
        self,
        trace: Trace,
        fractions=None,
        *,
        policies: tuple[str, ...] = POLICIES,
        training_rng: int = 0,
        use_segments: bool = True,
    ):
        self.trace = trace
        self.fractions = list(fractions or paper_capacity_fractions())
        self.policies = tuple(policies)
        self.training_rng = training_rng
        self.use_segments = use_segments
        self.footprint = trace.footprint_bytes
        self._distances = reaccess_distances(trace.object_ids)
        self._features = extract_features(trace)
        self._blocks: dict[int, CapacityBlock] = {}

    # ------------------------------------------------------------- mapping

    def capacity_bytes(self, fraction: float) -> int:
        return paper_equivalent_bytes(fraction, self.footprint).bytes

    def paper_gb(self, fraction: float) -> float:
        return paper_equivalent_bytes(fraction, self.footprint).paper_gb

    # ------------------------------------------------------------- compute

    def _block(self, cap: int) -> CapacityBlock:
        block = self._blocks.get(cap)
        if block is None:
            block = _compute_block_impl(
                self.trace,
                self.policies,
                self._distances,
                self._features,
                cap,
                self.training_rng,
                self.use_segments,
            )
            self._blocks[cap] = block
        return block

    def precompute(
        self,
        *,
        max_workers: int | None = None,
        start_method: str | None = None,
    ) -> None:
        """Fill every capacity block, optionally in parallel.

        ``max_workers=None`` resolves to ``min(n_blocks, cpu_count)``;
        ``max_workers=0`` or ``1`` computes serially in-process, as does
        ``start_method="inline"``.

        ``start_method`` picks the multiprocessing context (``fork``,
        ``spawn``, ``forkserver`` — whatever the platform offers), falling
        back to :data:`START_METHOD_ENV` and then the platform default.
        Every method gets the same zero-copy fan-out: the trace columns,
        the memoised segment plan, the feature matrix and the re-access
        distances are exported once into shared memory and workers attach
        views from a compact handle — no per-task (or per-worker)
        serialisation of the trace, and bit-identical results across
        methods.  The shared blocks are unlinked before this method
        returns, even when a worker raises or dies.
        """
        caps = [self.capacity_bytes(f) for f in self.fractions]
        todo = [c for c in dict.fromkeys(caps) if c not in self._blocks]
        if not todo:
            return
        method = resolve_start_method(start_method)
        if max_workers is None:
            max_workers = min(len(todo), os.cpu_count() or 1)
        if method == INLINE or max_workers <= 1:
            for cap in todo:
                self._block(cap)
            return
        # One Fenwick pass in the parent; workers rehydrate the plan arrays
        # from shared memory and re-derive only their own capacities' run
        # lists (cheap vectorised passes).
        plan = SegmentPlan.for_trace(self.trace) if self.use_segments else None
        buffer = SharedTraceBuffer.create(
            self.trace,
            plan=plan,
            features=self._features,
            distances=self._distances,
        )
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=multiprocessing.get_context(method),
                initializer=_worker_init,
                initargs=(buffer.handle, self.policies, self.use_segments),
            ) as pool:
                futures = {
                    cap: pool.submit(
                        _compute_block_worker, cap, self.training_rng
                    )
                    for cap in todo
                }
                for cap, fut in futures.items():
                    self._blocks[cap] = fut.result()
        finally:
            buffer.unlink()

    # -------------------------------------------------------------- access

    def point(self, policy: str, fraction: float) -> GridPoint:
        if policy not in self.policies:
            raise ValueError(f"policy {policy!r} not in grid {self.policies}")
        cap = self.capacity_bytes(fraction)
        block = self._block(cap)
        return GridPoint(
            policy=policy,
            capacity_bytes=cap,
            paper_gb=self.paper_gb(fraction),
            results={
                "original": block.originals[policy],
                "proposal": block.proposals[policy],
                "ideal": block.ideals[policy],
                "belady": block.belady,
            },
            classifier_metrics=(
                block.lirs_training.overall
                if policy == "lirs"
                else block.training.overall
            ),
        )

    def block(self, fraction: float) -> CapacityBlock:
        """The full per-capacity state (criteria, labels, trainings, sims)."""
        return self._block(self.capacity_bytes(fraction))

    def sweep(self, policy: str, metric: str) -> dict[str, list[float]]:
        """``metric`` per configuration across the capacity axis."""
        out: dict[str, list[float]] = {c: [] for c in CONFIGS}
        for f in self.fractions:
            gp = self.point(policy, f)
            for config in CONFIGS:
                out[config].append(gp.rate(config, metric))
        return out

    def block_info(self, fraction: float) -> dict:
        """Capacity-level telemetry (criterion M, cost v, classifier quality)."""
        block = self._block(self.capacity_bytes(fraction))
        return {
            "capacity_bytes": block.capacity_bytes,
            "cost_v": block.cost_v,
            "criteria_m": block.criteria.m_threshold,
            "lirs_criteria_m": block.lirs_criteria.m_threshold,
            "classifier": block.training.overall,
            "lirs_classifier": block.lirs_training.overall,
        }


def format_sweep_table(
    title: str,
    runner: GridRunner,
    metric: str,
    *,
    policies=None,
    percent: bool = True,
) -> str:
    """Paper-style table: one block per policy, rows = configurations."""
    policies = policies or runner.policies
    caps_gb = [runner.paper_gb(f) for f in runner.fractions]
    lines = [
        title,
        "capacity (paper-scale GB): " + " ".join(f"{g:7.0f}" for g in caps_gb),
    ]
    for policy in policies:
        sweep = runner.sweep(policy, metric)
        lines.append(f"-- {policy.upper()} --")
        for config in CONFIGS:
            vals = sweep[config]
            fmt = (
                " ".join(f"{100 * v:6.1f}%" for v in vals)
                if percent
                else " ".join(f"{v:7.3f}" for v in vals)
            )
            lines.append(f"{config:>10s}: {fmt}")
    return "\n".join(lines)
