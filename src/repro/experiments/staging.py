"""Head-to-head: classifier vs flashiness vs composed, judged at the device.

The paper's admission classifier and Flashield-style staging both avoid
SSD writes, by different evidence: the classifier predicts one-time
objects from features at miss time, the staging tier demands observed
re-accesses in DRAM before any flash write.  This module runs the four
relevant schemes through one ``simulate()`` sweep per capacity point —

* ``no-admission`` — :class:`~repro.cache.hierarchy.HierarchicalCache`,
  every miss written;
* ``classifier``   — the same hierarchy behind
  :class:`~repro.core.admission.ClassifierAdmission`;
* ``flashiness``   — :class:`~repro.cache.staging.StagingCache`, objects
  must cross the flashiness bar;
* ``composed``     — staging *and* the classifier: the miss-time verdict
  marks staged objects (in)eligible, the bar must still be crossed —

each attached to its own :class:`~repro.ssd.cache_device.CacheSSD` with a
DFTL-style cached mapping table, so the comparison is settled in device
currency: write amplification, erase counts, CMT pressure and projected
lifetime, not just write totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import HierarchicalCache
from repro.cache.staging import CounterFlashiness, StagingCache
from repro.core.admission import ClassifierAdmission
from repro.core.criteria import solve_criteria
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.training import train_daily_classifier
from repro.experiments.grid import _COST_BOUNDARY_FRACTION
from repro.ml.cost_sensitive import select_cost_v
from repro.ml.flashiness import learned_flashiness_for_trace
from repro.ssd.cache_device import CacheSSD, simulate_on_ssd
from repro.trace.records import Trace

__all__ = [
    "HIT_RATE_SLACK",
    "SCHEMES",
    "SchemeOutcome",
    "StagingComparison",
    "StagingPoint",
    "check_write_ordering",
    "format_staging_table",
    "run_staging_comparison",
]

#: Report order: baselines first, then the mechanisms, then the composition.
SCHEMES = ("no-admission", "classifier", "flashiness", "composed")

#: Default capacity sweep (fractions of the trace's unique-byte footprint):
#: a small / medium / large cut through the paper's 2–20 GB grid shape.
DEFAULT_FRACTIONS = (0.02, 0.05, 0.10)


@dataclass
class SchemeOutcome:
    """One scheme at one capacity, cache-level and device-level."""

    scheme: str
    hit_rate: float
    byte_hit_rate: float
    ssd_writes: int
    bytes_written: int
    write_amplification: float
    erases: int
    cmt_miss_rate: float
    cmt_lookups: int
    lifetime_days: float
    denied: int
    promotions: int
    direct_admits: int

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "hit_rate": self.hit_rate,
            "byte_hit_rate": self.byte_hit_rate,
            "ssd_writes": self.ssd_writes,
            "bytes_written": self.bytes_written,
            "write_amplification": self.write_amplification,
            "erases": self.erases,
            "cmt_miss_rate": self.cmt_miss_rate,
            "cmt_lookups": self.cmt_lookups,
            "lifetime_days": self.lifetime_days,
            "denied": self.denied,
            "promotions": self.promotions,
            "direct_admits": self.direct_admits,
        }


@dataclass
class StagingPoint:
    """All four schemes at one capacity point."""

    fraction: float
    capacity_bytes: int
    outcomes: dict[str, SchemeOutcome]

    def to_dict(self) -> dict:
        return {
            "fraction": self.fraction,
            "capacity_bytes": self.capacity_bytes,
            "schemes": {k: v.to_dict() for k, v in self.outcomes.items()},
        }


@dataclass
class StagingComparison:
    """The full sweep plus the workload identity it ran against."""

    points: list[StagingPoint]
    footprint_bytes: int
    n_requests: int
    flashiness_threshold: int
    dram_fraction: float
    learned_flashiness: bool
    warnings: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "points": [p.to_dict() for p in self.points],
            "footprint_bytes": self.footprint_bytes,
            "n_requests": self.n_requests,
            "flashiness_threshold": self.flashiness_threshold,
            "dram_fraction": self.dram_fraction,
            "learned_flashiness": self.learned_flashiness,
            "warnings": list(self.warnings),
        }


def _outcome(scheme: str, report, policy, admission) -> SchemeOutcome:
    stats = report.simulation.stats
    ftl = report.device.ftl.stats
    cmt = report.device.cmt
    return SchemeOutcome(
        scheme=scheme,
        hit_rate=stats.hit_rate,
        byte_hit_rate=stats.byte_hit_rate,
        ssd_writes=stats.files_written,
        bytes_written=stats.bytes_written,
        write_amplification=ftl.write_amplification,
        erases=ftl.erases,
        cmt_miss_rate=cmt.stats.miss_rate if cmt is not None else 0.0,
        cmt_lookups=cmt.stats.lookups if cmt is not None else 0,
        lifetime_days=report.lifetime.lifetime_days,
        denied=getattr(admission, "denied", 0) if admission is not None else 0,
        promotions=getattr(policy, "promotions", 0),
        direct_admits=getattr(policy, "direct_admits", 0),
    )


def run_staging_comparison(
    trace: Trace,
    *,
    fractions=DEFAULT_FRACTIONS,
    dram_fraction: float = 0.05,
    flashiness_threshold: int = 1,
    redemption_delta: int = 1,
    use_learned_flashiness: bool = False,
    training_rng: int = 0,
    cmt_fraction: float = 0.25,
) -> StagingComparison:
    """Run the four-scheme sweep over ``fractions`` of the footprint.

    The classifier is trained once per capacity point through the same
    chain the grid runner uses (criteria fixed point → one-time labels →
    daily cost-sensitive training).  With ``use_learned_flashiness`` the
    staging bar additionally consults the trained model through
    :class:`repro.ml.flashiness.LearnedFlashiness` (falling back to the
    counter bar if no day produced a trained model).

    In the composed scheme a classifier denial raises the staged object's
    bar to ``flashiness_threshold + redemption_delta`` instead of blocking
    it outright: observed re-accesses contradict a one-time prediction,
    so strong-enough evidence overrides it (the redemption path of
    :class:`~repro.cache.staging.StagingCache`).
    """
    from repro.core.features import extract_features

    footprint = trace.footprint_bytes
    mean_size = trace.mean_object_size()
    distances = reaccess_distances(trace.object_ids)
    features = extract_features(trace)
    warnings: list[str] = []
    points: list[StagingPoint] = []

    for fraction in fractions:
        cap = max(1, int(footprint * fraction))
        criteria = solve_criteria(distances, cap, mean_size)
        cost_v = select_cost_v(
            cap, boundary_bytes=_COST_BOUNDARY_FRACTION * footprint
        )
        labels = one_time_labels(trace.object_ids, criteria.m_threshold)
        training = train_daily_classifier(
            trace, features, labels, cost_v=cost_v, rng=training_rng
        )

        def classifier():
            return ClassifierAdmission.from_criteria(
                training.predictions, criteria
            )

        model = next(
            (m for m in reversed(training.models) if m is not None), None
        )
        if use_learned_flashiness and model is None:
            warnings.append(
                f"fraction {fraction}: no trained daily model — "
                "falling back to the counter bar"
            )

        def flashiness_bar():
            if use_learned_flashiness and model is not None:
                return learned_flashiness_for_trace(
                    trace, model, min_dram_hits=max(1, flashiness_threshold)
                )
            return CounterFlashiness(flashiness_threshold)

        runs = {
            "no-admission": (
                HierarchicalCache.for_capacity(cap, dram_fraction=dram_fraction),
                None,
            ),
            "classifier": (
                HierarchicalCache.for_capacity(cap, dram_fraction=dram_fraction),
                classifier(),
            ),
            "flashiness": (
                StagingCache.for_capacity(
                    cap,
                    dram_fraction=dram_fraction,
                    flashiness=flashiness_bar(),
                ),
                None,
            ),
            "composed": (
                StagingCache.for_capacity(
                    cap,
                    dram_fraction=dram_fraction,
                    flashiness=flashiness_bar(),
                    redemption_threshold=flashiness_threshold
                    + redemption_delta,
                ),
                classifier(),
            ),
        }

        outcomes: dict[str, SchemeOutcome] = {}
        for scheme in SCHEMES:
            policy, admission = runs[scheme]
            device = CacheSSD.for_capacity(
                cap,
                mean_object_bytes=mean_size,
                cmt_fraction=cmt_fraction,
            )
            report = simulate_on_ssd(
                trace,
                policy,
                admission=admission,
                device=device,
                policy_name=scheme,
            )
            outcomes[scheme] = _outcome(scheme, report, policy, admission)
        points.append(
            StagingPoint(
                fraction=float(fraction),
                capacity_bytes=cap,
                outcomes=outcomes,
            )
        )

    return StagingComparison(
        points=points,
        footprint_bytes=footprint,
        n_requests=len(trace.object_ids),
        flashiness_threshold=flashiness_threshold,
        dram_fraction=dram_fraction,
        learned_flashiness=use_learned_flashiness,
        warnings=warnings,
    )


#: Default hit-rate tolerance for :func:`check_write_ordering`.  The
#: composed scheme admits a strict subset of what the flashiness bar alone
#: admits, so on a small (write-starved) SSD its hit rate sits *at most*
#: at the flashiness level; the slack prices the classifier's residual
#: false negatives on staged objects (bounded by the redemption bar) at
#: two hit-rate points.
HIT_RATE_SLACK = 0.02


def check_write_ordering(
    comparison: StagingComparison, *, hit_rate_slack: float = HIT_RATE_SLACK
) -> list[str]:
    """The composition contract, checked per capacity point.

    ``composed`` must write no more than either mechanism alone, while
    holding a hit rate at least ``min(classifier, flashiness)`` (less
    ``hit_rate_slack``, default :data:`HIT_RATE_SLACK`).  Returns
    human-readable violations — empty means the contract holds everywhere.
    """
    problems: list[str] = []
    for point in comparison.points:
        o = point.outcomes
        comp, cls, fl = o["composed"], o["classifier"], o["flashiness"]
        tag = f"fraction {point.fraction:g}"
        if comp.ssd_writes > cls.ssd_writes:
            problems.append(
                f"{tag}: composed writes {comp.ssd_writes} > "
                f"classifier {cls.ssd_writes}"
            )
        if comp.ssd_writes > fl.ssd_writes:
            problems.append(
                f"{tag}: composed writes {comp.ssd_writes} > "
                f"flashiness {fl.ssd_writes}"
            )
        floor = min(cls.hit_rate, fl.hit_rate) - hit_rate_slack
        if comp.hit_rate < floor:
            problems.append(
                f"{tag}: composed hit rate {comp.hit_rate:.4f} < "
                f"floor {floor:.4f}"
            )
    return problems


def format_staging_table(comparison: StagingComparison) -> str:
    """Fixed-width head-to-head table (one block per capacity point)."""
    lines = [
        f"{'capacity':>9} {'scheme':<13} {'hit':>6} {'writes':>9} "
        f"{'WA':>6} {'CMT miss':>8} {'erases':>7} {'life(d)':>9}"
    ]
    for point in comparison.points:
        cap_mib = point.capacity_bytes / 2**20
        for scheme in SCHEMES:
            o = point.outcomes[scheme]
            lines.append(
                f"{cap_mib:>8.1f}M {scheme:<13} {o.hit_rate:>6.3f} "
                f"{o.ssd_writes:>9,} {o.write_amplification:>6.3f} "
                f"{o.cmt_miss_rate:>8.3f} {o.erases:>7,} "
                f"{o.lifetime_days:>9,.0f}"
            )
    return "\n".join(lines)
