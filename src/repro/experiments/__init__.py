"""Experiment orchestration: the Figs. 6–10 grid and parallel sweeps.

:class:`~repro.experiments.grid.GridRunner` evaluates the paper's full
evaluation grid — replacement policies × capacities × {Original, Proposal,
Ideal, Belady} — sharing per-capacity state (criteria, labels, classifier
training) across policies exactly as the paper does.  Capacity blocks are
independent, so the grid parallelises across processes with
:meth:`~repro.experiments.grid.GridRunner.precompute`.
"""

from repro.experiments.grid import (
    CONFIGS,
    POLICIES,
    START_METHOD_ENV,
    CapacityBlock,
    GridPoint,
    GridRunner,
    format_sweep_table,
    resolve_start_method,
)
from repro.experiments.shm import (
    SharedColumnStore,
    SharedTraceBuffer,
    SharedTraceHandle,
)
from repro.experiments.staging import (
    HIT_RATE_SLACK,
    SCHEMES,
    SchemeOutcome,
    StagingComparison,
    StagingPoint,
    check_write_ordering,
    format_staging_table,
    run_staging_comparison,
)

__all__ = [
    "HIT_RATE_SLACK",
    "SCHEMES",
    "SchemeOutcome",
    "StagingComparison",
    "StagingPoint",
    "check_write_ordering",
    "format_staging_table",
    "run_staging_comparison",
    "CONFIGS",
    "POLICIES",
    "START_METHOD_ENV",
    "CapacityBlock",
    "GridPoint",
    "GridRunner",
    "SharedColumnStore",
    "SharedTraceBuffer",
    "SharedTraceHandle",
    "format_sweep_table",
    "resolve_start_method",
]
