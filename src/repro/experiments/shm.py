"""Spawn-safe zero-copy trace fan-out over ``multiprocessing.shared_memory``.

:meth:`~repro.experiments.grid.GridRunner.precompute` historically relied on
fork copy-on-write to hand each worker the sampled trace and the memoised
:class:`~repro.cache.segments.SegmentPlan` for free.  Under ``spawn`` or
``forkserver`` (macOS and Windows defaults, and any explicitly-chosen
context) nothing is inherited: every worker would re-pickle the full trace
and re-run the O(n log n) plan construction, silently erasing the grid's
zero-copy design.

This module makes the fan-out explicit and start-method-agnostic:

``SharedColumnStore``
    The low-level block manager.  ``create()`` copies a mapping of named
    NumPy arrays (structured or plain, any shape) into one
    :class:`multiprocessing.shared_memory.SharedMemory` block per column and
    yields a compact picklable :class:`StoreHandle` — block names, dtype
    descriptors, shapes.  ``attach()`` rehydrates the handle into read-only
    zero-copy views in any process.  Zero-length columns are carried inline
    in the handle (POSIX shared memory cannot map empty blocks).

``SharedTraceBuffer``
    The grid-facing wrapper: exports a :class:`~repro.trace.records.Trace`'s
    columnar arrays plus the prebuilt ``SegmentPlan`` arrays, the extracted
    feature matrix, and the re-access distances; ``attach()`` rebuilds all
    four zero-copy, with the plan explicitly installed as the trace's cached
    plan so workers never recompute it.

Lifecycle rules
---------------
* The **creating** process owns the blocks: ``close()``/``unlink()`` (or the
  context manager, or the ``weakref.finalize`` guard that fires at garbage
  collection and interpreter exit) removes the names from ``/dev/shm``.
  Because creation registers with the ``resource_tracker``, even a
  SIGKILLed owner gets its segments reaped by the tracker process.
* **Attaching** processes only ever ``close()`` (unmap); they are
  unregistered from the resource tracker immediately after attach, so a
  worker exiting — or dying — never unlinks (or warns about) blocks the
  parent still serves to its siblings.  Python 3.13+ expresses this with
  ``track=False``; older interpreters fall back to explicit unregister.
* ``close()`` tolerates live array views: NumPy buffers exported from the
  mapping keep it alive until the process exits, which is safe because the
  *name* is already unlinked — no descriptor leaks past the last view.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.cache.segments import SegmentPlan
from repro.trace.records import Trace

__all__ = [
    "ColumnSpec",
    "StoreHandle",
    "SharedColumnStore",
    "SharedTraceHandle",
    "SharedTraceBuffer",
]

_TRACE_PREFIX = "trace."
_PLAN_PREFIX = "plan."


@dataclass(frozen=True)
class ColumnSpec:
    """Shape/dtype metadata locating one column in shared memory.

    ``shm_name`` is ``None`` for zero-length columns, which have no backing
    block and are rebuilt as empty arrays on attach.  ``descr`` is the
    portable dtype descriptor from :func:`numpy.lib.format.dtype_to_descr`
    (round-trips structured dtypes such as ``ACCESS_DTYPE`` exactly).
    """

    key: str
    shm_name: str | None
    descr: object
    shape: tuple[int, ...]

    def dtype(self) -> np.dtype:
        return np.lib.format.descr_to_dtype(self.descr)


#: The complete picklable description of a store: what workers receive.
StoreHandle = tuple  # tuple[ColumnSpec, ...]


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Open an existing block without adopting lifecycle responsibility.

    Until 3.13 (``track=False``), ``SharedMemory(name=...)`` registers the
    segment with the resource tracker even when merely attaching.  Workers
    share the parent's tracker process, whose bookkeeping is a plain set of
    names — so a worker *unregistering* after attach would cancel the
    creator's registration (losing the crash-cleanup of last resort), and
    not unregistering would make worker exits unlink blocks the parent
    still serves.  The only safe pre-3.13 move is to suppress the
    registration call itself for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track kwarg
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _release_segments(segments: list, names: list, owner: bool) -> None:
    """Finalizer body: unmap every block, unlink them when owning.

    Deliberately standalone (no ``self``) so ``weakref.finalize`` can run it
    after the store is collected and at interpreter exit.  Every step is
    idempotent and swallows the benign failure modes: already-unlinked names
    and mappings pinned by still-live NumPy views.
    """
    if owner:
        for shm in segments:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
    for shm in segments:
        try:
            shm.close()
        except BufferError:
            # A NumPy view still exports the buffer.  The name is gone (or
            # never owned), so deferring the unmap to process exit leaks
            # nothing persistent.
            pass
    segments.clear()
    names.clear()


class SharedColumnStore:
    """A named set of NumPy columns living in shared-memory blocks."""

    def __init__(
        self,
        specs: StoreHandle,
        segments: dict,
        arrays: dict,
        *,
        owner: bool,
    ):
        self._specs = specs
        self._segments = segments
        self._arrays = arrays
        self.owner = owner
        # The finalizer holds the SharedMemory objects, not self: it fires
        # when the store is collected *and* (via atexit) at interpreter
        # shutdown, so a crashed run cannot leak /dev/shm segments.
        self._live = list(segments.values())
        self._names = [s.name for s in self._live]
        self._finalizer = weakref.finalize(
            self, _release_segments, self._live, self._names, owner
        )

    # ---------------------------------------------------------- construction

    @classmethod
    def create(cls, arrays: dict) -> "SharedColumnStore":
        """Copy ``arrays`` (name → ndarray) into fresh shared blocks."""
        specs = []
        segments: dict = {}
        views: dict = {}
        try:
            for key, arr in arrays.items():
                arr = np.asarray(arr)
                if arr.nbytes == 0:
                    specs.append(
                        ColumnSpec(
                            key=key,
                            shm_name=None,
                            descr=np.lib.format.dtype_to_descr(arr.dtype),
                            shape=tuple(arr.shape),
                        )
                    )
                    views[key] = arr
                    continue
                shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
                segments[key] = shm
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                view.flags.writeable = False
                views[key] = view
                specs.append(
                    ColumnSpec(
                        key=key,
                        shm_name=shm.name,
                        descr=np.lib.format.dtype_to_descr(arr.dtype),
                        shape=tuple(arr.shape),
                    )
                )
        except BaseException:
            _release_segments(list(segments.values()), [], True)
            raise
        return cls(tuple(specs), segments, views, owner=True)

    @classmethod
    def attach(cls, handle: StoreHandle) -> "SharedColumnStore":
        """Rehydrate a handle into read-only zero-copy views."""
        segments: dict = {}
        views: dict = {}
        try:
            for spec in handle:
                if spec.shm_name is None:
                    views[spec.key] = np.empty(spec.shape, dtype=spec.dtype())
                    views[spec.key].flags.writeable = False
                    continue
                shm = _attach_block(spec.shm_name)
                segments[spec.key] = shm
                view = np.ndarray(spec.shape, dtype=spec.dtype(), buffer=shm.buf)
                view.flags.writeable = False
                views[spec.key] = view
        except BaseException:
            _release_segments(list(segments.values()), [], False)
            raise
        return cls(tuple(handle), segments, views, owner=False)

    # --------------------------------------------------------------- access

    @property
    def handle(self) -> StoreHandle:
        """The compact picklable description workers attach from."""
        return self._specs

    @property
    def block_names(self) -> tuple[str, ...]:
        """Shared-memory names currently held (for leak auditing)."""
        return tuple(self._names)

    def arrays(self) -> dict:
        """All columns as (read-only) arrays, keyed by column name."""
        return dict(self._arrays)

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Unmap the blocks; the owner also unlinks them.  Idempotent."""
        self._arrays = {}
        self._finalizer()

    def unlink(self) -> None:
        """Remove the block names (owner only) and unmap."""
        if not self.owner:
            raise RuntimeError("only the creating store may unlink")
        self.close()

    def __enter__(self) -> "SharedColumnStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class SharedTraceHandle:
    """Everything a worker needs to rebuild the trace state: a few hundred
    bytes, regardless of trace size."""

    store: StoreHandle
    duration: float
    n_accesses: int
    feature_names: tuple[str, ...] | None = None
    min_run: int | None = None
    has_distances: bool = False
    extra: tuple = field(default=())


class SharedTraceBuffer:
    """A trace (plus derived grid state) exported through shared memory.

    Parent side::

        with SharedTraceBuffer.create(trace, plan=plan, features=fm,
                                      distances=d) as buf:
            pool = ProcessPoolExecutor(..., initargs=(buf.handle, ...))
            ...

    Worker side::

        buf = SharedTraceBuffer.attach(handle)
        buf.trace       # zero-copy Trace, SegmentPlan pre-installed
        buf.features    # FeatureMatrix view (or None)
        buf.distances   # re-access distance array (or None)
    """

    def __init__(
        self,
        store: SharedColumnStore,
        handle: SharedTraceHandle,
        *,
        trace: Trace | None,
        plan: SegmentPlan | None,
        features,
        distances,
    ):
        self._store = store
        self._handle = handle
        self.trace = trace
        self.plan = plan
        self.features = features
        self.distances = distances

    # ---------------------------------------------------------- construction

    @classmethod
    def create(
        cls,
        trace: Trace,
        *,
        plan: SegmentPlan | None = None,
        features=None,
        distances=None,
    ) -> "SharedTraceBuffer":
        """Export ``trace`` (and optional derived state) to shared memory.

        ``plan`` ships as its capacity-independent arrays (see
        :meth:`repro.cache.segments.SegmentPlan.export_arrays`);
        ``features`` is a :class:`~repro.core.features.FeatureMatrix`;
        ``distances`` any per-access ndarray (the grid's re-access
        distances).
        """
        arrays: dict = {
            _TRACE_PREFIX + key: arr
            for key, arr in trace.column_arrays().items()
        }
        feature_names = None
        if features is not None:
            arrays["aux.features"] = features.X
            feature_names = tuple(features.names)
        if distances is not None:
            arrays["aux.distances"] = distances
        min_run = None
        if plan is not None:
            if plan.n_accesses != trace.n_accesses:
                raise ValueError("plan does not match trace length")
            min_run = plan.min_run
            for key, arr in plan.export_arrays().items():
                arrays[_PLAN_PREFIX + key] = arr
        store = SharedColumnStore.create(arrays)
        handle = SharedTraceHandle(
            store=store.handle,
            duration=trace.duration,
            n_accesses=trace.n_accesses,
            feature_names=feature_names,
            min_run=min_run,
            has_distances=distances is not None,
        )
        return cls(
            store,
            handle,
            trace=trace,
            plan=plan,
            features=features,
            distances=distances,
        )

    @classmethod
    def attach(cls, handle: SharedTraceHandle) -> "SharedTraceBuffer":
        """Rebuild the trace state from a handle, entirely zero-copy."""
        from repro.core.features import FeatureMatrix

        store = SharedColumnStore.attach(handle.store)
        try:
            arrays = store.arrays()
            trace_cols = {
                key[len(_TRACE_PREFIX):]: arr
                for key, arr in arrays.items()
                if key.startswith(_TRACE_PREFIX)
            }
            trace = Trace.from_column_arrays(trace_cols, handle.duration)
            plan = None
            plan_cols = {
                key[len(_PLAN_PREFIX):]: arr
                for key, arr in arrays.items()
                if key.startswith(_PLAN_PREFIX)
            }
            if plan_cols:
                plan = SegmentPlan.from_arrays(
                    plan_cols, min_run=handle.min_run
                )
                plan.install(trace)
            features = None
            if handle.feature_names is not None:
                features = FeatureMatrix(
                    X=arrays["aux.features"], names=handle.feature_names
                )
            distances = (
                arrays["aux.distances"] if handle.has_distances else None
            )
        except BaseException:
            store.close()
            raise
        return cls(
            store,
            handle,
            trace=trace,
            plan=plan,
            features=features,
            distances=distances,
        )

    # --------------------------------------------------------------- access

    @property
    def handle(self) -> SharedTraceHandle:
        return self._handle

    @property
    def owner(self) -> bool:
        return self._store.owner

    @property
    def block_names(self) -> tuple[str, ...]:
        return self._store.block_names

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        self._store.close()

    def unlink(self) -> None:
        self._store.unlink()

    def __enter__(self) -> "SharedTraceBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
