"""Performance measurement harnesses for the hot decision path.

:mod:`repro.perf.hotpath` benchmarks every layer of the per-miss
admission stack (feature tracker, tree inference, end-to-end admission),
asserts exact decision parity between the fast and reference paths, and
writes the ``BENCH_hotpath.json`` trajectory file consumed by CI and the
performance docs.
"""

from repro.perf.hotpath import (
    BenchError,
    check_report,
    format_report,
    run_hotpath_bench,
    write_report,
)

__all__ = [
    "BenchError",
    "check_report",
    "format_report",
    "run_hotpath_bench",
    "write_report",
]
