"""The hot-path perf-regression harness behind ``repro bench-hotpath``.

Measures ns/decision for each layer of the per-miss admission stack —
feature construction, single-row tree inference, end-to-end admission —
for both the *reference* path (dict-dispatch tracker +
``model.predict(x.reshape(1, -1))[0]``) and the *fast* path
(:meth:`~repro.core.online.OnlineFeatureTracker.features_into` +
:func:`~repro.ml.fastpath.fast_predictor`), and verifies the two paths
make **bit-identical admission decisions** over a full trace replay.

Since the vectorised-segments PR it also measures the *simulator* itself:
a hit-dominated replay through ``simulate()`` with segment batching on vs
off (``simulate_segments`` / ``simulate_loop_reference``), parity-checked
to the event level — identical insert/evict sequences and identical
admission-verdict sequences under a denying admission policy.

The report is written as ``BENCH_hotpath.json``:

.. code-block:: json

    {
      "schema": "repro.bench_hotpath/v1",
      "quick": false,
      "components_selected": ["tree", "tracker", "admission", "segments"],
      "trace": {"objects": ..., "requests": ..., "seed": ...},
      "components": {
        "<component>": {"ns_per_op": ..., "ops": ...,
                         "speedup_vs_reference": ...}
      },
      "parity": {"requests": ..., "identical": true, ...},
      "segments": {"requests": ..., "coverage": ..., "parity": {...}},
      "t_classify_us": {"fast": ..., "reference": ..., "paper": 0.4}
    }

``components`` is the schema contract: each entry maps a component name to
``{ns_per_op, ops, speedup_vs_reference}`` where the speedup is measured
against that component's ``*_reference`` twin (reference rows carry 1.0).
The ``components`` argument / ``--components`` flag selects which groups
(:data:`COMPONENT_GROUPS`) are measured; unselected groups simply don't
appear in the report.  :func:`check_report` is the CI gate — every parity
section present must hold, and outside ``--quick`` the compiled single-row
classifier must clear the 5× floor and segment batching the 3× floor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.cache.base import AdmissionPolicy, CacheObserver
from repro.cache.lru import LRUCache
from repro.cache.segments import SegmentPlan
from repro.cache.simulator import simulate
from repro.core.criteria import solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.fastpath import fast_predictor
from repro.ml.gbdt import GradientBoostingClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.trace.generator import WorkloadConfig, generate_trace
from repro.trace.records import Trace

__all__ = [
    "BenchError",
    "COMPONENT_GROUPS",
    "run_hotpath_bench",
    "check_report",
    "format_report",
    "write_report",
]

SCHEMA = "repro.bench_hotpath/v1"
PAPER_T_CLASSIFY_US = 0.4

#: Selectable measurement groups (``--components``): feature tracker,
#: single-row/batch tree inference, end-to-end admission (incl. the
#: fast/reference decision-parity replay), the segmented simulator, the
#: span tracer's enabled vs disabled (no-op) record path, and the
#: compiled GBDT ensemble vs its ``decision_function`` reference.
COMPONENT_GROUPS = ("tree", "tracker", "admission", "segments", "spans", "gbdt")

#: GBDT size for the ``gbdt`` component: large enough that the ensemble
#: walk dominates timing, small enough that fitting stays a CI-smoke cost.
GBDT_ESTIMATORS_FULL, GBDT_ESTIMATORS_QUICK = 30, 10

#: Default scales: full mode targets the acceptance floor of a ≥100k-request
#: parity replay; quick mode is the CI smoke size.
FULL_OBJECTS, FULL_DAYS = 27_000, 10.0
QUICK_OBJECTS, QUICK_DAYS = 4_000, 2.0

#: The segments component replays a *hit-dominated* workload — many
#: requests per object, few one-timers, heavy popularity skew (a hot-shard
#: steady state rather than the paper's upload-heavy average day) — because
#: that is the regime segment batching exists for.  The cache gets 20 % of
#: the footprint (the paper-scale "20 GB" point, where LRU already hits
#: ~98 %).
SEGMENT_TRACE_FULL = dict(
    n_objects=4_000, days=10.0, mean_accesses=60.0,
    one_time_fraction=0.02, extra_tail_alpha=1.15,
)
SEGMENT_TRACE_QUICK = dict(
    n_objects=1_200, days=4.0, mean_accesses=40.0,
    one_time_fraction=0.02, extra_tail_alpha=1.15,
)
SEGMENT_CAPACITY_FRACTION = 0.20


class BenchError(AssertionError):
    """A hot-path invariant (parity or speedup floor) failed."""


# --------------------------------------------------------------- timing core


def _bench_loop(fn, rows, *, budget_seconds: float) -> tuple[float, int]:
    """ns/op and op count for ``fn(row)`` cycled over ``rows``.

    Runs whole passes over ``rows`` (so every measurement sees the same
    input mix) until the time budget is spent; one warmup pass first.
    """
    for row in rows:
        fn(row)
    ops = 0
    elapsed = 0.0
    perf = time.perf_counter
    while elapsed < budget_seconds:
        t0 = perf()
        for row in rows:
            fn(row)
        elapsed += perf() - t0
        ops += len(rows)
    return 1e9 * elapsed / ops, ops


def _component(ns: float, ops: int, reference_ns: float | None = None) -> dict:
    return {
        "ns_per_op": ns,
        "ops": ops,
        "speedup_vs_reference": 1.0 if reference_ns is None else reference_ns / ns,
    }


# ----------------------------------------------------------- parity fixture


class _RecordingAdmission(OnlineClassifierAdmission):
    """Admission wrapper that logs the exact admit/deny verdict sequence."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.verdict_log: list[bool] = []

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        ok = super().should_admit(index, oid, size)
        self.verdict_log.append(ok)
        return ok


def _parity_run(trace: Trace, model, m_threshold: float, cap: int, *, fast: bool):
    adm = _RecordingAdmission(
        model,
        OnlineFeatureTracker(trace),
        m_threshold,
        HistoryTable(1024),
        use_fast_path=fast,
    )
    result = simulate(trace, LRUCache(cap), admission=adm)
    return adm, result


class _EventRecorder(CacheObserver):
    """Captures the cache's full mutation stream, in order."""

    def __init__(self):
        self.events: list[tuple[str, int]] = []

    def on_insert(self, oid: int, size: int) -> None:
        self.events.append(("insert", oid))

    def on_evict(self, oid: int) -> None:
        self.events.append(("evict", oid))


class _DenyingAdmission(AdmissionPolicy):
    """Deterministic deny-some admission with a verdict log.

    Denials leave objects non-resident, invalidating the segment plan's
    hit proofs mid-run — exactly the adversarial case the batch fallback
    path must survive bit-identically.
    """

    def __init__(self, modulus: int = 7):
        self.modulus = modulus
        self.verdict_log: list[bool] = []

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        ok = oid % self.modulus != 0
        self.verdict_log.append(ok)
        return ok

    def reset(self) -> None:
        self.verdict_log.clear()


def _segment_parity(trace: Trace, cap: int, plan: SegmentPlan) -> dict:
    """Event-level parity: segments on vs off, admit-all and denying."""
    out: dict = {}
    for label, make_adm in (("always_admit", None), ("denying", _DenyingAdmission)):
        events = {}
        stats = {}
        verdicts = {}
        for use in (False, True):
            rec = _EventRecorder()
            adm = make_adm() if make_adm is not None else None
            result = simulate(
                trace,
                LRUCache(cap),
                admission=adm,
                observer=rec,
                use_segments=use,
                segment_plan=plan if use else None,
            )
            events[use] = rec.events
            stats[use] = vars(result.stats).copy()
            verdicts[use] = list(adm.verdict_log) if adm is not None else []
        out[label] = {
            "identical": (
                events[True] == events[False]
                and stats[True] == stats[False]
                and verdicts[True] == verdicts[False]
            ),
            "events": len(events[False]),
            "decisions": len(verdicts[False]),
            "stats_segments": stats[True],
            "stats_loop": stats[False],
        }
    out["identical"] = all(v["identical"] for v in out.values() if isinstance(v, dict))
    return out


# ------------------------------------------------------------------ harness


def run_hotpath_bench(
    *,
    trace: Trace | None = None,
    objects: int | None = None,
    days: float | None = None,
    seed: int = 0,
    quick: bool = False,
    budget_seconds: float | None = None,
    components=None,
) -> dict:
    """Measure the per-miss decision stack and return the report dict.

    ``trace`` overrides synthetic generation (``objects``/``days``/
    ``seed``).  ``quick`` shrinks the workload and per-component timing
    budget for CI smoke runs; parity is verified in both modes.
    ``components`` selects which :data:`COMPONENT_GROUPS` to measure
    (default: all) — the CI quick gate runs only ``admission`` +
    ``segments``, whose code paths this repo's hot-path work actually
    touches, instead of re-measuring every component on every push.
    """
    if components is None:
        groups = set(COMPONENT_GROUPS)
    else:
        groups = set(components)
        unknown = groups - set(COMPONENT_GROUPS)
        if unknown:
            raise ValueError(
                f"unknown component groups {sorted(unknown)}; "
                f"choose from {COMPONENT_GROUPS}"
            )
        if not groups:
            raise ValueError("components must name at least one group")
    if budget_seconds is None:
        budget_seconds = 0.05 if quick else 0.4

    needs_main_trace = bool(groups & {"tree", "tracker", "admission", "gbdt"})
    if trace is None and needs_main_trace:
        trace = generate_trace(
            WorkloadConfig(
                n_objects=objects or (QUICK_OBJECTS if quick else FULL_OBJECTS),
                days=days or (QUICK_DAYS if quick else FULL_DAYS),
                seed=seed,
            )
        )

    report: dict = {
        "schema": SCHEMA,
        "quick": quick,
        "components_selected": sorted(groups),
        "components": {},
    }
    out = report["components"]
    if trace is not None:
        report["trace"] = {
            "objects": trace.n_objects,
            "requests": trace.n_accesses,
            "seed": seed,
        }

    model = compiled = fm = labels = None
    m = 0.0
    cap = 0
    if groups & {"tree", "admission", "gbdt"}:
        # The paper's labelling pipeline feeds every model component.
        cap = max(1, trace.footprint_bytes // 100)
        criteria = solve_criteria(
            reaccess_distances(trace.object_ids), cap, trace.mean_object_size()
        )
        m = criteria.m_threshold
        labels = one_time_labels(trace.object_ids, m)
        fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
    if groups & {"tree", "admission"}:
        # The production model: cost-sensitive CART on the paper's five
        # features.
        model = CostSensitiveClassifier(
            DecisionTreeClassifier(max_splits=30, rng=seed),
            CostMatrix(fn_cost=1.0, fp_cost=2.0),
        ).fit(fm.X, labels)
        compiled = fast_predictor(model)

    if "tree" in groups:
        rng = np.random.default_rng(seed)
        sample = fm.X[rng.choice(fm.X.shape[0], size=256, replace=False)]
        sample_lists = [row.tolist() for row in sample]

        # ---- single-row tree inference: the Eq.-6 t_classify term itself.
        ref_ns, ref_ops = _bench_loop(
            lambda x: model.predict(x.reshape(1, -1))[0],
            list(sample),
            budget_seconds=budget_seconds,
        )
        out["tree_single_reference"] = _component(ref_ns, ref_ops)
        one_ns, one_ops = _bench_loop(
            model.predict_one, sample_lists, budget_seconds=budget_seconds
        )
        out["tree_single_predict_one"] = _component(one_ns, one_ops, ref_ns)
        cmp_ns, cmp_ops = _bench_loop(
            compiled.predict_one, sample_lists, budget_seconds=budget_seconds
        )
        out["tree_single_compiled"] = _component(cmp_ns, cmp_ops, ref_ns)

        # ---- batch inference: per-row cost of one micro-batch matrix call.
        bref_ns, bref_ops = _bench_loop(
            model.predict, [sample], budget_seconds=budget_seconds
        )
        out["tree_batch_reference"] = _component(
            bref_ns / len(sample), bref_ops * len(sample)
        )
        bcmp_ns, bcmp_ops = _bench_loop(
            compiled.predict, [sample], budget_seconds=budget_seconds
        )
        out["tree_batch_compiled"] = _component(
            bcmp_ns / len(sample), bcmp_ops * len(sample), bref_ns / len(sample)
        )

    if "tracker" in groups:
        # ---- feature tracker: dict-dispatch + ndarray vs plan + reused
        # buffer.  Replayed over a trace prefix so recency/recent-requests
        # state is real.
        prefix = min(trace.n_accesses, 4096)
        tracker_ref = OnlineFeatureTracker(trace)
        indices = list(range(prefix))
        for i in indices:  # steady-state running state for both trackers
            tracker_ref.observe(i)
        tref_ns, tref_ops = _bench_loop(
            tracker_ref.features, indices, budget_seconds=budget_seconds
        )
        out["tracker_features_reference"] = _component(tref_ns, tref_ops)
        buf = [0.0] * len(tracker_ref.feature_names)
        tfast_ns, tfast_ops = _bench_loop(
            lambda i: tracker_ref.features_into(i, buf),
            indices,
            budget_seconds=budget_seconds,
        )
        out["tracker_features_into"] = _component(tfast_ns, tfast_ops, tref_ns)

    if "admission" in groups:
        # ---- end-to-end admission + exact decision parity over a replay.
        fast_adm, fast_result = _parity_run(trace, model, m, cap, fast=True)
        ref_adm, ref_result = _parity_run(trace, model, m, cap, fast=False)
        out["admission_reference"] = _component(
            1e9 * ref_adm.mean_decision_seconds, ref_adm.decisions
        )
        out["admission_fast"] = _component(
            1e9 * fast_adm.mean_decision_seconds,
            fast_adm.decisions,
            1e9 * ref_adm.mean_decision_seconds,
        )
        report["parity"] = {
            "requests": trace.n_accesses,
            "decisions": fast_adm.decisions,
            "identical": (
                fast_adm.verdict_log == ref_adm.verdict_log
                and fast_result.stats == ref_result.stats
            ),
            "stats_fast": vars(fast_result.stats).copy(),
            "stats_reference": vars(ref_result.stats).copy(),
        }
        report["t_classify_us"] = {
            "fast": 1e6 * fast_adm.mean_decision_seconds,
            "reference": 1e6 * ref_adm.mean_decision_seconds,
            "paper": PAPER_T_CLASSIFY_US,
        }

    if "segments" in groups:
        report["segments"] = _bench_segments(seed, quick, out)

    if "spans" in groups:
        _bench_spans(out, budget_seconds)

    if "gbdt" in groups:
        report["gbdt"] = _bench_gbdt(
            fm.X, labels, seed, quick, out, budget_seconds
        )

    return report


def _bench_gbdt(
    X: np.ndarray,
    labels: np.ndarray,
    seed: int,
    quick: bool,
    out: dict,
    budget_seconds: float,
) -> dict:
    """Compiled GBDT ensemble vs the generic ``decision_function`` walk.

    Fits a boosted ensemble on the same one-time labels as the CART
    component, then measures single-row and per-row batch inference for
    the reference path (``predict(x.reshape(1, -1))[0]`` / ``predict``)
    against the compiled walkers from :func:`fast_predictor`.  Parity is
    exact over the *full* feature matrix — class verdicts and raw margins
    both bit-identical — and the section records ``compiled`` so the CI
    gate can prove the ensemble did not fall back to the generic wrapper.
    """
    gb = GradientBoostingClassifier(
        n_estimators=GBDT_ESTIMATORS_QUICK if quick else GBDT_ESTIMATORS_FULL,
        max_depth=3,
        rng=seed,
    ).fit(X, labels)
    cp = fast_predictor(gb)
    margins = gb.compile_decision_function()

    rng = np.random.default_rng(seed)
    sample = X[rng.choice(X.shape[0], size=256, replace=False)]
    sample_lists = [row.tolist() for row in sample]

    ref_ns, ref_ops = _bench_loop(
        lambda x: gb.predict(x.reshape(1, -1))[0],
        list(sample),
        budget_seconds=budget_seconds,
    )
    out["gbdt_single_reference"] = _component(ref_ns, ref_ops)
    cmp_ns, cmp_ops = _bench_loop(
        cp.predict_one, sample_lists, budget_seconds=budget_seconds
    )
    out["gbdt_single_compiled"] = _component(cmp_ns, cmp_ops, ref_ns)

    bref_ns, bref_ops = _bench_loop(
        gb.predict, [sample], budget_seconds=budget_seconds
    )
    out["gbdt_batch_reference"] = _component(
        bref_ns / len(sample), bref_ops * len(sample)
    )
    bcmp_ns, bcmp_ops = _bench_loop(
        cp.predict, [sample], budget_seconds=budget_seconds
    )
    out["gbdt_batch_compiled"] = _component(
        bcmp_ns / len(sample), bcmp_ops * len(sample), bref_ns / len(sample)
    )

    ref_verdicts = gb.predict(X)
    ref_margins = gb.decision_function(X)
    single_rows = min(X.shape[0], 512)
    identical = (
        np.array_equal(cp.predict(X), ref_verdicts)
        and np.array_equal(margins.predict(X), ref_margins)
        and all(
            cp.predict_one(X[i].tolist()) == ref_verdicts[i]
            and margins.predict_one(X[i].tolist()) == ref_margins[i]
            for i in range(single_rows)
        )
    )
    return {
        "rows": int(X.shape[0]),
        "single_rows_checked": single_rows,
        "n_estimators": len(gb.estimators_),
        "n_nodes": cp.n_nodes,
        "compiled": cp.compiled,
        "parity": {"identical": bool(identical), "rows": int(X.shape[0])},
    }


def _bench_segments(seed: int, quick: bool, out: dict) -> dict:
    """Measure ``simulate()`` segments-on vs -off on a hit-dominated trace.

    Timing replays run admit-all (the regime the grid's Original sweeps
    live in); parity additionally replays under a denying admission whose
    mid-run misses force the batch fallback path.  The per-trace
    :class:`SegmentPlan` is prebuilt and shared — exactly how ``simulate``
    amortises it across a grid — so the timed delta isolates the replay
    loop itself.
    """
    params = SEGMENT_TRACE_QUICK if quick else SEGMENT_TRACE_FULL
    seg_trace = generate_trace(WorkloadConfig(seed=seed, **params))
    seg_cap = max(1, int(SEGMENT_CAPACITY_FRACTION * seg_trace.footprint_bytes))
    plan = SegmentPlan.for_trace(seg_trace)
    n = seg_trace.n_accesses

    reps = 2 if quick else 3
    times = {}
    for use in (False, True):
        best = float("inf")
        for _ in range(reps + 1):  # one warmup rep
            t0 = time.perf_counter()
            simulate(
                seg_trace,
                LRUCache(seg_cap),
                use_segments=use,
                segment_plan=plan if use else None,
            )
            best = min(best, time.perf_counter() - t0)
        times[use] = best

    loop_ns = 1e9 * times[False] / n
    seg_ns = 1e9 * times[True] / n
    out["simulate_loop_reference"] = _component(loop_ns, n * reps)
    out["simulate_segments"] = _component(seg_ns, n * reps, loop_ns)

    return {
        "requests": n,
        "objects": seg_trace.n_objects,
        "capacity_bytes": seg_cap,
        "coverage": plan.coverage(seg_cap),
        "min_run": plan.min_run,
        "parity": _segment_parity(seg_trace, seg_cap, plan),
    }


def _bench_spans(out: dict, budget_seconds: float) -> None:
    """Span-tracer overhead: enabled record path vs the disabled no-op.

    The disabled path is what every instrumented hot loop pays when
    tracing is off (``tracer.span`` returning :data:`NULL_SPAN` without
    touching the clock or the ring), so it is the number the CI trend
    gate watches; the enabled path prices turning tracing on.
    """
    from repro.obs.spans import Tracer

    rows = list(range(256))
    enabled = Tracer(capacity=4096)

    def record_enabled(i):
        with enabled.span("bench", "perf"):
            pass

    ref_ns, ref_ops = _bench_loop(
        record_enabled, rows, budget_seconds=budget_seconds
    )
    out["spans_enabled_reference"] = _component(ref_ns, ref_ops)

    disabled = Tracer(capacity=4096, enabled=False)

    def record_disabled(i):
        with disabled.span("bench", "perf"):
            pass

    noop_ns, noop_ops = _bench_loop(
        record_disabled, rows, budget_seconds=budget_seconds
    )
    out["spans_disabled_noop"] = _component(noop_ns, noop_ops, ref_ns)


# ----------------------------------------------------------------- reporting


def check_report(
    report: dict, *, min_speedup: float = 0.0, min_segment_speedup: float = 0.0
) -> None:
    """Raise :class:`BenchError` on parity failure or a missed speed floor.

    Sections absent from the report (deselected via ``components=``) are
    skipped; every section *present* must pass.
    """
    parity = report.get("parity")
    if parity is not None and not parity["identical"]:
        raise BenchError(
            "fast and reference admission paths diverged: "
            f"fast={parity['stats_fast']} reference={parity['stats_reference']}"
        )
    segments = report.get("segments")
    if segments is not None and not segments["parity"]["identical"]:
        raise BenchError(
            "segmented and loop simulations diverged: "
            f"{segments['parity']}"
        )
    gbdt = report.get("gbdt")
    if gbdt is not None:
        if not gbdt["compiled"]:
            raise BenchError(
                "GBDT fell back to the generic predict wrapper instead of "
                "compiling its ensemble"
            )
        if not gbdt["parity"]["identical"]:
            raise BenchError(
                "compiled GBDT diverged from decision_function over "
                f"{gbdt['parity']['rows']:,} rows"
            )
    components = report["components"]
    if min_speedup > 0 and "tree_single_compiled" in components:
        speedup = components["tree_single_compiled"]["speedup_vs_reference"]
        if speedup < min_speedup:
            raise BenchError(
                f"compiled single-row classification speedup {speedup:.1f}× "
                f"is below the {min_speedup:.1f}× floor"
            )
    if min_segment_speedup > 0 and "simulate_segments" in components:
        speedup = components["simulate_segments"]["speedup_vs_reference"]
        if speedup < min_segment_speedup:
            raise BenchError(
                f"segmented simulation speedup {speedup:.1f}× is below "
                f"the {min_segment_speedup:.1f}× floor"
            )


def format_report(report: dict) -> str:
    header = f"hot-path benchmark ({'quick' if report['quick'] else 'full'} mode)"
    trace = report.get("trace")
    if trace is not None:
        header += (
            f" — {trace['requests']:,} requests, {trace['objects']:,} objects"
        )
    lines = [
        header,
        f"{'component':28s} {'ns/op':>12s} {'ops':>10s} {'speedup':>9s}",
    ]
    for name, c in report["components"].items():
        lines.append(
            f"{name:28s} {c['ns_per_op']:12,.0f} {c['ops']:10,} "
            f"{c['speedup_vs_reference']:8.1f}x"
        )
    parity = report.get("parity")
    if parity is not None:
        lines.append(
            f"decision parity over {parity['requests']:,} requests "
            f"({parity['decisions']:,} decisions): "
            + ("IDENTICAL" if parity["identical"] else "DIVERGED")
        )
    t = report.get("t_classify_us")
    if t is not None:
        lines.append(
            f"t_classify: {t['fast']:.2f} µs fast / {t['reference']:.2f} µs "
            f"reference (paper's C implementation: {t['paper']:.1f} µs)"
        )
    segments = report.get("segments")
    if segments is not None:
        lines.append(
            f"segment batching over {segments['requests']:,} requests "
            f"({100 * segments['coverage']:.1f}% proven-hit coverage): "
            + ("IDENTICAL" if segments["parity"]["identical"] else "DIVERGED")
        )
    gbdt = report.get("gbdt")
    if gbdt is not None:
        lines.append(
            f"gbdt ensemble ({gbdt['n_estimators']} trees, "
            f"{gbdt['n_nodes']:,} nodes, "
            + ("compiled" if gbdt["compiled"] else "generic fallback")
            + f") over {gbdt['parity']['rows']:,} rows: "
            + ("IDENTICAL" if gbdt["parity"]["identical"] else "DIVERGED")
        )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
