"""The hot-path perf-regression harness behind ``repro bench-hotpath``.

Measures ns/decision for each layer of the per-miss admission stack —
feature construction, single-row tree inference, end-to-end admission —
for both the *reference* path (dict-dispatch tracker +
``model.predict(x.reshape(1, -1))[0]``) and the *fast* path
(:meth:`~repro.core.online.OnlineFeatureTracker.features_into` +
:func:`~repro.ml.fastpath.fast_predictor`), and verifies the two paths
make **bit-identical admission decisions** over a full trace replay.

The report is written as ``BENCH_hotpath.json``:

.. code-block:: json

    {
      "schema": "repro.bench_hotpath/v1",
      "quick": false,
      "trace": {"objects": ..., "requests": ..., "seed": ...},
      "components": {
        "<component>": {"ns_per_op": ..., "ops": ...,
                         "speedup_vs_reference": ...}
      },
      "parity": {"requests": ..., "identical": true, ...},
      "t_classify_us": {"fast": ..., "reference": ..., "paper": 0.4}
    }

``components`` is the schema contract: each entry maps a component name to
``{ns_per_op, ops, speedup_vs_reference}`` where the speedup is measured
against that component's ``*_reference`` twin (reference rows carry 1.0).
:func:`check_report` is the CI gate — parity must hold always, and outside
``--quick`` the compiled single-row classifier must clear the 5× floor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.cache.lru import LRUCache
from repro.cache.simulator import simulate
from repro.core.criteria import solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import one_time_labels, reaccess_distances
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.fastpath import fast_predictor
from repro.ml.tree import DecisionTreeClassifier
from repro.trace.generator import WorkloadConfig, generate_trace
from repro.trace.records import Trace

__all__ = [
    "BenchError",
    "run_hotpath_bench",
    "check_report",
    "format_report",
    "write_report",
]

SCHEMA = "repro.bench_hotpath/v1"
PAPER_T_CLASSIFY_US = 0.4

#: Default scales: full mode targets the acceptance floor of a ≥100k-request
#: parity replay; quick mode is the CI smoke size.
FULL_OBJECTS, FULL_DAYS = 27_000, 10.0
QUICK_OBJECTS, QUICK_DAYS = 4_000, 2.0


class BenchError(AssertionError):
    """A hot-path invariant (parity or speedup floor) failed."""


# --------------------------------------------------------------- timing core


def _bench_loop(fn, rows, *, budget_seconds: float) -> tuple[float, int]:
    """ns/op and op count for ``fn(row)`` cycled over ``rows``.

    Runs whole passes over ``rows`` (so every measurement sees the same
    input mix) until the time budget is spent; one warmup pass first.
    """
    for row in rows:
        fn(row)
    ops = 0
    elapsed = 0.0
    perf = time.perf_counter
    while elapsed < budget_seconds:
        t0 = perf()
        for row in rows:
            fn(row)
        elapsed += perf() - t0
        ops += len(rows)
    return 1e9 * elapsed / ops, ops


def _component(ns: float, ops: int, reference_ns: float | None = None) -> dict:
    return {
        "ns_per_op": ns,
        "ops": ops,
        "speedup_vs_reference": 1.0 if reference_ns is None else reference_ns / ns,
    }


# ----------------------------------------------------------- parity fixture


class _RecordingAdmission(OnlineClassifierAdmission):
    """Admission wrapper that logs the exact admit/deny verdict sequence."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.verdict_log: list[bool] = []

    def should_admit(self, index: int, oid: int, size: int) -> bool:
        ok = super().should_admit(index, oid, size)
        self.verdict_log.append(ok)
        return ok


def _parity_run(trace: Trace, model, m_threshold: float, cap: int, *, fast: bool):
    adm = _RecordingAdmission(
        model,
        OnlineFeatureTracker(trace),
        m_threshold,
        HistoryTable(1024),
        use_fast_path=fast,
    )
    result = simulate(trace, LRUCache(cap), admission=adm)
    return adm, result


# ------------------------------------------------------------------ harness


def run_hotpath_bench(
    *,
    trace: Trace | None = None,
    objects: int | None = None,
    days: float | None = None,
    seed: int = 0,
    quick: bool = False,
    budget_seconds: float | None = None,
) -> dict:
    """Measure the per-miss decision stack and return the report dict.

    ``trace`` overrides synthetic generation (``objects``/``days``/
    ``seed``).  ``quick`` shrinks the workload and per-component timing
    budget for CI smoke runs; parity is verified in both modes.
    """
    if trace is None:
        trace = generate_trace(
            WorkloadConfig(
                n_objects=objects or (QUICK_OBJECTS if quick else FULL_OBJECTS),
                days=days or (QUICK_DAYS if quick else FULL_DAYS),
                seed=seed,
            )
        )
    if budget_seconds is None:
        budget_seconds = 0.05 if quick else 0.4

    # The production model: cost-sensitive CART on the paper's five features.
    cap = max(1, trace.footprint_bytes // 100)
    criteria = solve_criteria(
        reaccess_distances(trace.object_ids), cap, trace.mean_object_size()
    )
    m = criteria.m_threshold
    labels = one_time_labels(trace.object_ids, m)
    fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
    model = CostSensitiveClassifier(
        DecisionTreeClassifier(max_splits=30, rng=seed),
        CostMatrix(fn_cost=1.0, fp_cost=2.0),
    ).fit(fm.X, labels)
    compiled = fast_predictor(model)

    components: dict[str, dict] = {}
    rng = np.random.default_rng(seed)
    sample = fm.X[rng.choice(fm.X.shape[0], size=256, replace=False)]
    sample_lists = [row.tolist() for row in sample]

    # ---- single-row tree inference: the Eq.-6 t_classify term itself.
    ref_ns, ref_ops = _bench_loop(
        lambda x: model.predict(x.reshape(1, -1))[0],
        list(sample),
        budget_seconds=budget_seconds,
    )
    components["tree_single_reference"] = _component(ref_ns, ref_ops)
    one_ns, one_ops = _bench_loop(
        model.predict_one, sample_lists, budget_seconds=budget_seconds
    )
    components["tree_single_predict_one"] = _component(one_ns, one_ops, ref_ns)
    cmp_ns, cmp_ops = _bench_loop(
        compiled.predict_one, sample_lists, budget_seconds=budget_seconds
    )
    components["tree_single_compiled"] = _component(cmp_ns, cmp_ops, ref_ns)

    # ---- batch inference: per-row cost of one micro-batch matrix call.
    bref_ns, bref_ops = _bench_loop(
        model.predict, [sample], budget_seconds=budget_seconds
    )
    components["tree_batch_reference"] = _component(
        bref_ns / len(sample), bref_ops * len(sample)
    )
    bcmp_ns, bcmp_ops = _bench_loop(
        compiled.predict, [sample], budget_seconds=budget_seconds
    )
    components["tree_batch_compiled"] = _component(
        bcmp_ns / len(sample), bcmp_ops * len(sample), bref_ns / len(sample)
    )

    # ---- feature tracker: dict-dispatch + ndarray vs plan + reused buffer.
    # Replayed over a trace prefix so recency/recent-requests state is real.
    prefix = min(trace.n_accesses, 4096)
    tracker_ref = OnlineFeatureTracker(trace)
    indices = list(range(prefix))
    for i in indices:  # steady-state running state for both trackers
        tracker_ref.observe(i)
    tref_ns, tref_ops = _bench_loop(
        tracker_ref.features, indices, budget_seconds=budget_seconds
    )
    components["tracker_features_reference"] = _component(tref_ns, tref_ops)
    buf = [0.0] * len(tracker_ref.feature_names)
    tfast_ns, tfast_ops = _bench_loop(
        lambda i: tracker_ref.features_into(i, buf),
        indices,
        budget_seconds=budget_seconds,
    )
    components["tracker_features_into"] = _component(tfast_ns, tfast_ops, tref_ns)

    # ---- end-to-end admission + exact decision parity over a full replay.
    fast_adm, fast_result = _parity_run(trace, model, m, cap, fast=True)
    ref_adm, ref_result = _parity_run(trace, model, m, cap, fast=False)
    components["admission_reference"] = _component(
        1e9 * ref_adm.mean_decision_seconds, ref_adm.decisions
    )
    components["admission_fast"] = _component(
        1e9 * fast_adm.mean_decision_seconds,
        fast_adm.decisions,
        1e9 * ref_adm.mean_decision_seconds,
    )

    identical = (
        fast_adm.verdict_log == ref_adm.verdict_log
        and fast_result.stats == ref_result.stats
    )
    parity = {
        "requests": trace.n_accesses,
        "decisions": fast_adm.decisions,
        "identical": identical,
        "stats_fast": vars(fast_result.stats).copy(),
        "stats_reference": vars(ref_result.stats).copy(),
    }

    return {
        "schema": SCHEMA,
        "quick": quick,
        "trace": {
            "objects": trace.n_objects,
            "requests": trace.n_accesses,
            "seed": seed,
        },
        "components": components,
        "parity": parity,
        "t_classify_us": {
            "fast": 1e6 * fast_adm.mean_decision_seconds,
            "reference": 1e6 * ref_adm.mean_decision_seconds,
            "paper": PAPER_T_CLASSIFY_US,
        },
    }


# ----------------------------------------------------------------- reporting


def check_report(report: dict, *, min_speedup: float = 0.0) -> None:
    """Raise :class:`BenchError` on parity failure or a missed speed floor."""
    parity = report["parity"]
    if not parity["identical"]:
        raise BenchError(
            "fast and reference admission paths diverged: "
            f"fast={parity['stats_fast']} reference={parity['stats_reference']}"
        )
    if min_speedup > 0:
        speedup = report["components"]["tree_single_compiled"][
            "speedup_vs_reference"
        ]
        if speedup < min_speedup:
            raise BenchError(
                f"compiled single-row classification speedup {speedup:.1f}× "
                f"is below the {min_speedup:.1f}× floor"
            )


def format_report(report: dict) -> str:
    lines = [
        f"hot-path benchmark ({'quick' if report['quick'] else 'full'} mode) — "
        f"{report['trace']['requests']:,} requests, "
        f"{report['trace']['objects']:,} objects",
        f"{'component':28s} {'ns/op':>12s} {'ops':>10s} {'speedup':>9s}",
    ]
    for name, c in report["components"].items():
        lines.append(
            f"{name:28s} {c['ns_per_op']:12,.0f} {c['ops']:10,} "
            f"{c['speedup_vs_reference']:8.1f}x"
        )
    parity = report["parity"]
    lines.append(
        f"decision parity over {parity['requests']:,} requests "
        f"({parity['decisions']:,} decisions): "
        + ("IDENTICAL" if parity["identical"] else "DIVERGED")
    )
    t = report["t_classify_us"]
    lines.append(
        f"t_classify: {t['fast']:.2f} µs fast / {t['reference']:.2f} µs "
        f"reference (paper's C implementation: {t['paper']:.1f} µs)"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
