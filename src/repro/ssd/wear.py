"""Wear statistics over per-block erase counts.

The lifetime of a flash device is governed not just by total erases but by
their *distribution*: an un-levelled device dies when its hottest block
exhausts its P/E budget.  :class:`WearStats` condenses an erase-count
vector into the quantities :mod:`repro.ssd.endurance` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WearStats"]


@dataclass(frozen=True)
class WearStats:
    """Summary of a device's wear state."""

    mean_erases: float
    max_erases: int
    min_erases: int
    std_erases: float
    n_blocks: int

    @classmethod
    def from_erase_counts(cls, erase_counts) -> "WearStats":
        e = np.asarray(erase_counts, dtype=np.int64)
        if e.ndim != 1 or e.shape[0] == 0:
            raise ValueError("erase_counts must be a non-empty 1-D array")
        if (e < 0).any():
            raise ValueError("erase counts must be non-negative")
        return cls(
            mean_erases=float(e.mean()),
            max_erases=int(e.max()),
            min_erases=int(e.min()),
            std_erases=float(e.std()),
            n_blocks=int(e.shape[0]),
        )

    @property
    def spread(self) -> int:
        """Max − min erase count; small spread ⇒ effective wear levelling."""
        return self.max_erases - self.min_erases

    @property
    def levelling_efficiency(self) -> float:
        """mean / max ∈ (0, 1]: 1.0 means perfectly even wear.

        Devices with poor levelling burn their P/E budget at the max-worn
        block while the average block is still fresh.
        """
        if self.max_erases == 0:
            return 1.0
        return self.mean_erases / self.max_erases
