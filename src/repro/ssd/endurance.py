"""Endurance model: from write traffic to device lifetime.

This closes the paper's argument quantitatively.  §1's example: a 1 TB
cache SSD in front of 10×2 TB HDDs sees ~20× the write density of the
backend; §2.2: 61.5 % one-time photos mean the majority of those writes
are useless.  Given a cache's byte-write rate (Figs. 8–9), the measured
write amplification, and the device's P/E budget, the expected lifetime is

    lifetime = usable_program_budget / nand_write_rate

where the usable budget is derated by the wear-levelling efficiency (an
uneven device dies at its hottest block).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ssd.geometry import SSDGeometry
from repro.ssd.wear import WearStats

__all__ = ["EnduranceModel", "LifetimeEstimate", "write_density_ratio"]

_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class LifetimeEstimate:
    """Projected endurance figures for one traffic scenario."""

    lifetime_days: float
    nand_bytes_per_day: float
    host_bytes_per_day: float
    write_amplification: float
    total_pe_budget_bytes: float

    def ratio_vs(self, other: "LifetimeEstimate") -> float:
        """Lifetime multiple of this scenario over ``other``."""
        if other.lifetime_days <= 0:
            raise ValueError("reference lifetime must be positive")
        return self.lifetime_days / other.lifetime_days


class EnduranceModel:
    """P/E-budget lifetime projection for a cache SSD."""

    def __init__(self, geometry: SSDGeometry):
        self.geometry = geometry

    def program_budget_bytes(self, *, levelling_efficiency: float = 1.0) -> float:
        """Total bytes the device may program before wear-out.

        ``levelling_efficiency`` ∈ (0, 1] derates the budget: with
        efficiency *e*, the hottest block reaches the P/E limit when only a
        fraction *e* of the ideal budget has been written.
        """
        if not 0.0 < levelling_efficiency <= 1.0:
            raise ValueError("levelling_efficiency must be in (0, 1]")
        g = self.geometry
        ideal = float(g.n_blocks) * g.block_bytes * g.pe_cycle_limit
        return ideal * levelling_efficiency

    def lifetime(
        self,
        host_bytes_per_day: float,
        *,
        write_amplification: float = 1.0,
        wear: WearStats | None = None,
    ) -> LifetimeEstimate:
        """Project lifetime for a host write rate (bytes/day).

        ``write_amplification`` scales host traffic to NAND traffic
        (measure it with :class:`~repro.ssd.ftl.PageMappedFTL`);
        ``wear`` optionally supplies the levelling derate.
        """
        if host_bytes_per_day <= 0:
            raise ValueError("host_bytes_per_day must be positive")
        if write_amplification < 1.0:
            raise ValueError("write_amplification cannot be below 1")
        eff = wear.levelling_efficiency if wear is not None else 1.0
        budget = self.program_budget_bytes(levelling_efficiency=eff)
        nand_per_day = host_bytes_per_day * write_amplification
        return LifetimeEstimate(
            lifetime_days=budget / nand_per_day,
            nand_bytes_per_day=nand_per_day,
            host_bytes_per_day=host_bytes_per_day,
            write_amplification=write_amplification,
            total_pe_budget_bytes=budget,
        )


def write_density_ratio(
    cache_bytes: float,
    backend_bytes: float,
    cache_write_fraction: float,
) -> float:
    """§1's write-density argument, made computable.

    With uniformly distributed backend traffic, the cache absorbs
    ``cache_write_fraction`` of all written bytes into ``cache_bytes`` of
    flash while the backend spreads everything over ``backend_bytes``:

        density_ratio = (fraction / cache_bytes) / (1 / backend_bytes)

    The paper's example (1 TB SSD, 20 TB of HDDs, fraction = 1) gives 20:1.
    """
    if cache_bytes <= 0 or backend_bytes <= 0:
        raise ValueError("capacities must be positive")
    if not 0.0 < cache_write_fraction <= 1.0:
        raise ValueError("cache_write_fraction must be in (0, 1]")
    return (cache_write_fraction / cache_bytes) / (1.0 / backend_bytes)
