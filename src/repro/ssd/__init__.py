"""SSD device substrate: flash geometry, FTL, garbage collection, wear.

The paper's motivation chain is: cache admission → fewer SSD writes →
less write amplification and wear → longer device life (§1–§2: "write
density" of a caching SSD is ~20× that of backend storage; unnecessary
writes "fasten SSD wearing").  The paper itself stops at counting cache
writes; this package carries the chain through an actual device model so
the lifetime claim can be *computed*:

* :mod:`repro.ssd.geometry` — pages/blocks/over-provisioning;
* :mod:`repro.ssd.ftl` — page-mapped FTL with greedy garbage collection,
  TRIM support, and wear accounting (host vs NAND writes → write
  amplification);
* :mod:`repro.ssd.cmt` — DFTL-style cached mapping table: translation
  hit/miss/evict accounting and per-miss latency on top of the FTL;
* :mod:`repro.ssd.wear` — erase-count statistics and a static
  wear-levelling policy;
* :mod:`repro.ssd.endurance` — P/E-budget lifetime estimation;
* :mod:`repro.ssd.cache_device` — adapter that turns a cache simulation's
  insert/evict stream into FTL traffic.
"""

from repro.ssd.geometry import SSDGeometry
from repro.ssd.ftl import FTLStats, PageMappedFTL
from repro.ssd.cmt import CMTStats, MappingTableCache
from repro.ssd.wear import WearStats
from repro.ssd.endurance import EnduranceModel, LifetimeEstimate
from repro.ssd.cache_device import CacheSSD, SSDRunReport, simulate_on_ssd

__all__ = [
    "SSDGeometry",
    "FTLStats",
    "PageMappedFTL",
    "CMTStats",
    "MappingTableCache",
    "SSDRunReport",
    "WearStats",
    "EnduranceModel",
    "LifetimeEstimate",
    "CacheSSD",
    "simulate_on_ssd",
]
