"""DFTL-style cached mapping table (CMT) for the page-mapped FTL.

A real page-mapped FTL cannot hold the full logical-to-physical table in
device DRAM; it caches hot translation entries (DFTL, Gupta et al.,
ASPLOS'09) and pays a flash read to fetch a missing one.  This module
models that pressure as an LRU over logical page numbers with hit / miss /
eviction accounting and a configurable per-miss latency penalty, so each
admission scheme's verdict stream can be judged by *device-level* cost —
an admission policy that narrows the written working set also narrows the
translation working set.

The model is accounting-only: it never changes what the FTL writes or
erases, it measures which host-issued translations would have missed the
device's mapping cache.  GC-internal mapping updates are excluded — the
FTL walks its reverse map in-place during relocation, which DFTL services
from the victim block's out-of-band area, not the CMT.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CMTStats", "MappingTableCache"]


@dataclass
class CMTStats:
    """Translation-cache traffic counters.

    ``lookups == hits + misses`` is a conservation invariant the hypothesis
    suite pins against the FTL's ``translation_lookups`` counter.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class MappingTableCache:
    """LRU translation cache over logical page numbers.

    Parameters
    ----------
    capacity_entries:
        How many translation entries fit in device DRAM.
    miss_penalty_us:
        Latency charged per miss (one flash page read to fetch the
        translation page; DFTL's canonical cost).
    """

    def __init__(self, capacity_entries: int, *, miss_penalty_us: float = 25.0):
        if capacity_entries <= 0:
            raise ValueError("capacity_entries must be positive")
        if miss_penalty_us < 0:
            raise ValueError("miss_penalty_us must be >= 0")
        self.capacity_entries = int(capacity_entries)
        self.miss_penalty_us = float(miss_penalty_us)
        self.stats = CMTStats()
        self._entries: OrderedDict[int, None] = OrderedDict()

    def lookup(self, lpn: int) -> bool:
        """Translate ``lpn``; returns ``True`` on a CMT hit.

        A miss loads the entry (evicting the LRU entry when full) — after
        a trim the entry stays cached: it then caches the *unmapped*
        mapping, which is still a translation the device can answer from
        DRAM.
        """
        stats = self.stats
        stats.lookups += 1
        entries = self._entries
        if lpn in entries:
            entries.move_to_end(lpn)
            stats.hits += 1
            return True
        stats.misses += 1
        if len(entries) >= self.capacity_entries:
            entries.popitem(last=False)
            stats.evictions += 1
        entries[lpn] = None
        return False

    @property
    def added_latency_us(self) -> float:
        """Total translation-fetch latency this run paid on CMT misses."""
        return self.stats.misses * self.miss_penalty_us

    @property
    def occupancy(self) -> float:
        """Resident fraction of the translation cache."""
        return len(self._entries) / self.capacity_entries

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self.stats = CMTStats()
        self._entries.clear()
