"""Page-mapped flash translation layer with greedy garbage collection.

Models the device behaviour the paper's lifetime argument rests on:

* out-of-place writes — a logical overwrite programs a fresh page and
  invalidates the old one;
* erase-before-reuse at block granularity — blocks are recycled by GC,
  which must *relocate* still-valid pages first (the source of write
  amplification);
* greedy victim selection (fewest valid pages), the baseline the paper's
  GC-optimisation citations ([5], [33]) improve upon;
* TRIM — the cache layer invalidates evicted objects, which is what keeps
  a cache SSD's GC cheap;
* wear accounting per block, feeding :mod:`repro.ssd.endurance`.

The mapping tables are flat NumPy arrays (one int per page), so even
multi-GiB devices simulate comfortably.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.ssd.geometry import SSDGeometry

__all__ = ["FTLStats", "PageMappedFTL", "DeviceFullError"]

_UNMAPPED = -1


class DeviceFullError(RuntimeError):
    """Raised when a write cannot proceed: every block is fully valid."""


@dataclass
class FTLStats:
    """Traffic and wear counters.

    ``write_amplification`` = NAND page programs / host page writes — the
    factor by which GC inflates the paper's "cache writes" once they reach
    the flash.
    """

    host_pages_written: int = 0
    nand_pages_written: int = 0
    gc_pages_relocated: int = 0
    erases: int = 0
    trims: int = 0
    gc_runs: int = 0
    #: Host-issued logical-to-physical translations (writes and TRIMs).
    #: When a :class:`repro.ssd.cmt.MappingTableCache` is attached, its
    #: ``hits + misses`` equals this count exactly (conservation suite).
    translation_lookups: int = 0

    @property
    def write_amplification(self) -> float:
        if self.host_pages_written == 0:
            return 1.0
        return self.nand_pages_written / self.host_pages_written


class PageMappedFTL:
    """A page-mapped FTL over :class:`~repro.ssd.geometry.SSDGeometry`.

    Parameters
    ----------
    geometry:
        Device layout.
    wear_leveling:
        ``"dynamic"`` (default) allocates the least-worn free block;
        ``"none"`` allocates FIFO;
        ``"static"`` additionally forces cold blocks into rotation when the
        erase-count spread exceeds ``static_wl_spread``.
    static_wl_spread:
        Erase-count gap that triggers static wear levelling.
    cmt:
        Optional :class:`repro.ssd.cmt.MappingTableCache` — every
        host-issued translation (write or TRIM) is looked up through it,
        modelling DFTL's cached mapping table.  GC-internal relocations
        bypass it (serviced from the victim block's reverse map).
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        *,
        wear_leveling: str = "dynamic",
        static_wl_spread: int = 64,
        n_streams: int = 1,
        cmt=None,
    ):
        if wear_leveling not in ("none", "dynamic", "static"):
            raise ValueError(f"unknown wear_leveling: {wear_leveling!r}")
        if static_wl_spread < 1:
            raise ValueError("static_wl_spread must be >= 1")
        if n_streams < 1:
            raise ValueError("n_streams must be >= 1")
        # Streams + the dedicated GC append point each pin one open block,
        # and GC needs at least one spare to make progress.
        if geometry.n_blocks < n_streams + 3:
            raise ValueError(
                f"geometry too small for {n_streams} streams: "
                f"{geometry.n_blocks} blocks < {n_streams + 3}"
            )
        self.geometry = geometry
        self.wear_leveling = wear_leveling
        self.static_wl_spread = static_wl_spread
        self.n_streams = n_streams
        self.cmt = cmt
        g = geometry

        self._l2p = np.full(g.user_pages, _UNMAPPED, dtype=np.int64)
        self._p2l = np.full(g.total_pages, _UNMAPPED, dtype=np.int64)
        self._valid = np.zeros(g.n_blocks, dtype=np.int32)
        self._erases = np.zeros(g.n_blocks, dtype=np.int64)
        self._is_free = np.ones(g.n_blocks, dtype=bool)
        self._free: deque[int] = deque(range(g.n_blocks))

        # Append points: one per host stream, plus [-1] reserved for GC
        # relocations (mixing relocated-cold with fresh-hot data is what
        # multi-stream separation exists to avoid).
        self._active = [self._take_free_block() for _ in range(n_streams + 1)]
        self._ptr = [0] * (n_streams + 1)
        self.stats = FTLStats()

    # ------------------------------------------------------------ plumbing

    def _take_free_block(self) -> int:
        if not self._free:
            raise DeviceFullError("no free blocks available")
        if self.wear_leveling in ("dynamic", "static") and len(self._free) > 1:
            # Dynamic wear levelling: open the least-worn free block.
            block = min(self._free, key=lambda b: self._erases[b])
            self._free.remove(block)
        else:
            block = self._free.popleft()
        self._is_free[block] = False
        return block

    def _page_of(self, block: int, offset: int) -> int:
        return block * self.geometry.pages_per_block + offset

    def _invalidate(self, lpn: int) -> None:
        ppn = self._l2p[lpn]
        if ppn != _UNMAPPED:
            self._p2l[ppn] = _UNMAPPED
            self._valid[ppn // self.geometry.pages_per_block] -= 1
            self._l2p[lpn] = _UNMAPPED

    def _program(self, lpn: int, stream: int) -> None:
        """Append one page for ``lpn`` at the stream's write pointer.

        The caller guarantees the stream's active block has room
        (non-reentrant by construction: GC never triggers inside a
        program).
        """
        assert self._ptr[stream] < self.geometry.pages_per_block
        block = self._active[stream]
        ppn = self._page_of(block, self._ptr[stream])
        self._l2p[lpn] = ppn
        self._p2l[ppn] = lpn
        self._valid[block] += 1
        self.stats.nand_pages_written += 1
        self._ptr[stream] += 1

    def _advance_active(self, stream: int) -> None:
        """Open a fresh active block when the stream's block is full."""
        if self._ptr[stream] < self.geometry.pages_per_block:
            return
        self._active[stream] = self._take_free_block()
        self._ptr[stream] = 0

    def _ensure_free_headroom(self) -> None:
        """GC until ≥2 free blocks remain (one is the GC spare)."""
        while len(self._free) <= 1:
            if not self._gc_once():
                break

    def _victim_candidates(self) -> np.ndarray:
        mask = ~self._is_free
        for block in self._active:
            mask[block] = False
        return np.nonzero(mask)[0]

    def _pick_victim(self) -> int | None:
        candidates = self._victim_candidates()
        if candidates.shape[0] == 0:
            return None
        valid = self._valid[candidates]
        best = candidates[np.argmin(valid)]
        if self._valid[best] >= self.geometry.pages_per_block:
            return None  # no space to reclaim anywhere
        if self.wear_leveling == "static":
            spread = self._erases.max() - self._erases.min()
            if spread > self.static_wl_spread:
                # Force the least-erased (cold) block into rotation even if
                # it is mostly valid — classic static wear levelling.
                cold = candidates[np.argmin(self._erases[candidates])]
                if self._valid[cold] < self.geometry.pages_per_block:
                    return int(cold)
        return int(best)

    def _gc_once(self) -> bool:
        """Reclaim one block; returns False when nothing can be reclaimed."""
        victim = self._pick_victim()
        if victim is None:
            return False
        self.stats.gc_runs += 1
        ppb = self.geometry.pages_per_block
        base = victim * ppb
        live = np.nonzero(self._p2l[base : base + ppb] != _UNMAPPED)[0]
        for offset in live:
            lpn = int(self._p2l[base + offset])
            # Relocate: invalidate old location, program at the append point.
            self._p2l[base + offset] = _UNMAPPED
            self._valid[victim] -= 1
            self._l2p[lpn] = _UNMAPPED
            self.stats.gc_pages_relocated += 1
            # A victim has < ppb valid pages, so at most one fresh
            # destination block (the GC spare) is ever needed per run.
            # Relocations always land on the dedicated GC stream.
            gc_stream = self.n_streams
            self._advance_active(gc_stream)
            self._program(lpn, gc_stream)
        # Erase and return to the free pool.
        assert self._valid[victim] == 0
        self._erases[victim] += 1
        self.stats.erases += 1
        self._is_free[victim] = True
        self._free.append(victim)
        return True

    def _translate(self, lpn: int) -> None:
        """Host-side L2P consultation: counted, routed through the CMT."""
        self.stats.translation_lookups += 1
        if self.cmt is not None:
            self.cmt.lookup(lpn)

    # -------------------------------------------------------------- public

    def write(self, lpn: int, stream: int = 0) -> None:
        """Host write of one logical page to the given stream.

        Streams separate data by expected lifetime (e.g. the admission
        classifier's temperature verdict): data that dies together stays
        in the same blocks, so GC finds mostly-invalid victims and write
        amplification falls.
        """
        if not 0 <= lpn < self.geometry.user_pages:
            raise ValueError(f"lpn {lpn} out of range")
        if not 0 <= stream < self.n_streams:
            raise ValueError(f"stream {stream} out of range")
        self._translate(lpn)
        self._invalidate(lpn)
        self.stats.host_pages_written += 1
        if self._ptr[stream] == self.geometry.pages_per_block:
            self._ensure_free_headroom()
            if not self._free:
                raise DeviceFullError(
                    "device full: every block is completely valid"
                )
            self._advance_active(stream)
        self._program(lpn, stream)

    def write_range(self, lpn_start: int, n_pages: int, stream: int = 0) -> None:
        """Host write of ``n_pages`` consecutive logical pages."""
        if n_pages <= 0:
            raise ValueError("n_pages must be positive")
        for lpn in range(lpn_start, lpn_start + n_pages):
            self.write(lpn, stream)

    def trim(self, lpn: int) -> None:
        """Host TRIM: the logical page no longer holds useful data."""
        if not 0 <= lpn < self.geometry.user_pages:
            raise ValueError(f"lpn {lpn} out of range")
        # The device must consult the mapping to learn whether the page is
        # live, so even a no-op TRIM is one translation.
        self._translate(lpn)
        if self._l2p[lpn] != _UNMAPPED:
            self._invalidate(lpn)
            self.stats.trims += 1

    def trim_range(self, lpn_start: int, n_pages: int) -> None:
        for lpn in range(lpn_start, lpn_start + n_pages):
            self.trim(lpn)

    def is_mapped(self, lpn: int) -> bool:
        return self._l2p[lpn] != _UNMAPPED

    @property
    def erase_counts(self) -> np.ndarray:
        """Per-block erase counts (copy)."""
        return self._erases.copy()

    @property
    def valid_pages(self) -> int:
        return int(self._valid.sum())

    def check_invariants(self) -> None:
        """Internal consistency (used by tests)."""
        mapped = np.nonzero(self._l2p != _UNMAPPED)[0]
        assert (self._p2l[self._l2p[mapped]] == mapped).all()
        per_block = np.bincount(
            self._l2p[mapped] // self.geometry.pages_per_block,
            minlength=self.geometry.n_blocks,
        )
        assert (per_block == self._valid).all()
        assert (self._valid >= 0).all()
