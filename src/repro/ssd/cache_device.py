"""Adapter: a cache simulation's mutation stream driving the FTL.

:class:`CacheSSD` implements :class:`repro.cache.base.CacheObserver`:
inserted objects are programmed page-by-page, evicted objects are TRIMmed.
Because the FTL is page-mapped, an object's logical pages need not be
contiguous, so allocation is a simple free-page stack — no fragmentation.

:func:`simulate_on_ssd` bundles the common pattern: run a trace through a
policy + admission filter while a device model records the flash-level
consequences (write amplification, erases, wear spread, lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.base import AdmissionPolicy, CacheObserver, CachePolicy
from repro.cache.simulator import SimulationResult, simulate
from repro.ssd.cmt import MappingTableCache
from repro.ssd.endurance import EnduranceModel, LifetimeEstimate
from repro.ssd.ftl import PageMappedFTL
from repro.ssd.geometry import SSDGeometry
from repro.ssd.wear import WearStats
from repro.trace.records import Trace

__all__ = ["CacheSSD", "SSDRunReport", "simulate_on_ssd"]


class CacheSSD(CacheObserver):
    """An SSD holding cache objects, fed by the simulator's observer hook.

    Parameters
    ----------
    geometry:
        Device layout.  ``user_bytes`` must exceed the cache capacity by
        enough slack to absorb per-object page rounding (an 1-byte object
        still occupies one page) — :meth:`for_capacity` picks a safe size.
    wear_leveling:
        Forwarded to :class:`~repro.ssd.ftl.PageMappedFTL`.
    """

    def __init__(
        self,
        geometry: SSDGeometry,
        *,
        wear_leveling: str = "dynamic",
        n_streams: int = 1,
        temperature=None,
        trim_on_evict: bool = True,
        cmt: MappingTableCache | None = None,
    ):
        """``temperature(oid, size) -> stream`` routes objects to write
        streams (multi-stream separation); e.g. the admission classifier's
        confidence can steer likely-short-lived objects away from
        long-lived ones, cutting GC write amplification.

        ``trim_on_evict=False`` models cache stacks that do not issue TRIM:
        an evicted object's pages stay valid until their logical pages are
        reallocated — the regime where lifetime-aware placement matters
        most.

        ``cmt`` attaches a DFTL-style cached mapping table: host-issued
        translations (writes and TRIMs) are accounted through it, so the
        report can expose translation-cache pressure per admission scheme."""
        if temperature is not None and n_streams < 2:
            raise ValueError("temperature routing needs n_streams >= 2")
        self.geometry = geometry
        self.ftl = PageMappedFTL(
            geometry, wear_leveling=wear_leveling, n_streams=n_streams, cmt=cmt
        )
        self.temperature = temperature
        self.trim_on_evict = trim_on_evict
        # Free logical pages as a stack; object -> array of owned lpns.
        self._free_lpns: list[int] = list(range(geometry.user_pages - 1, -1, -1))
        self._owned: dict[int, np.ndarray] = {}

    @classmethod
    def for_capacity(
        cls,
        cache_bytes: int,
        *,
        mean_object_bytes: float,
        page_bytes: int = 16 * 1024,
        slack: float = 0.25,
        wear_leveling: str = "dynamic",
        n_streams: int = 1,
        temperature=None,
        trim_on_evict: bool = True,
        cmt_fraction: float | None = 0.25,
        cmt_miss_penalty_us: float = 25.0,
        **geometry_kwargs,
    ) -> "CacheSSD":
        """Size a device for a cache of ``cache_bytes``.

        Page rounding wastes up to one page per object; with expected
        object count ``cache_bytes / mean_object_bytes``, the logical space
        is padded by that worst case plus ``slack``.

        ``cmt_fraction`` sizes the cached mapping table as a fraction of
        the device's logical pages (DFTL devices cache a sliver of the
        full table; 25 % keeps down-scaled experiments meaningfully
        pressured).  ``None`` disables the CMT model entirely.
        """
        if cache_bytes <= 0 or mean_object_bytes <= 0:
            raise ValueError("cache_bytes and mean_object_bytes must be positive")
        expected_objects = max(1, int(cache_bytes / mean_object_bytes))
        padding = expected_objects * page_bytes
        user_bytes = int((cache_bytes + padding) * (1.0 + slack))
        # Down-scaled experiments produce tiny devices; shrink the erase
        # block until the device has enough blocks for its append points
        # (plus sensible GC headroom) at the realistic page size.
        ppb = int(geometry_kwargs.pop("pages_per_block", 256))
        min_blocks = max(16, n_streams + 3)
        while ppb > 4:
            geometry = SSDGeometry(
                user_bytes=user_bytes,
                page_bytes=page_bytes,
                pages_per_block=ppb,
                **geometry_kwargs,
            )
            if geometry.n_blocks >= min_blocks:
                break
            ppb //= 2
        else:  # pragma: no cover - ppb floor reached
            geometry = SSDGeometry(
                user_bytes=user_bytes,
                page_bytes=page_bytes,
                pages_per_block=ppb,
                **geometry_kwargs,
            )
        cmt = None
        if cmt_fraction is not None:
            if not 0.0 < cmt_fraction <= 1.0:
                raise ValueError("cmt_fraction must be in (0, 1]")
            cmt = MappingTableCache(
                max(1, int(geometry.user_pages * cmt_fraction)),
                miss_penalty_us=cmt_miss_penalty_us,
            )
        return cls(
            geometry,
            wear_leveling=wear_leveling,
            n_streams=n_streams,
            temperature=temperature,
            trim_on_evict=trim_on_evict,
            cmt=cmt,
        )

    @property
    def cmt(self) -> MappingTableCache | None:
        return self.ftl.cmt

    # ----------------------------------------------------------- observer

    def on_insert(self, oid: int, size: int) -> None:
        if oid in self._owned:
            raise RuntimeError(f"object {oid} inserted twice without eviction")
        n = self.geometry.pages_for(size)
        if n > len(self._free_lpns):
            raise RuntimeError(
                "logical page pool exhausted: increase the device slack "
                f"(object needs {n} pages, {len(self._free_lpns)} free)"
            )
        lpns = np.array([self._free_lpns.pop() for _ in range(n)], dtype=np.int64)
        stream = self.temperature(oid, size) if self.temperature else 0
        for lpn in lpns:
            self.ftl.write(int(lpn), stream)
        self._owned[oid] = lpns

    def on_evict(self, oid: int) -> None:
        lpns = self._owned.pop(oid, None)
        if lpns is None:
            raise RuntimeError(f"eviction of unknown object {oid}")
        if self.trim_on_evict:
            for lpn in lpns:
                self.ftl.trim(int(lpn))
        # Without TRIM the pages stay valid until the lpns are reused —
        # the FTL sees the death only at overwrite time.
        self._free_lpns.extend(int(x) for x in lpns)

    # -------------------------------------------------------------- report

    @property
    def wear(self) -> WearStats:
        return WearStats.from_erase_counts(self.ftl.erase_counts)

    @property
    def resident_objects(self) -> int:
        return len(self._owned)

    def lifetime(
        self, host_bytes_per_day: float
    ) -> LifetimeEstimate:
        """Project lifetime from this run's measured write amplification."""
        return EnduranceModel(self.geometry).lifetime(
            host_bytes_per_day,
            write_amplification=self.ftl.stats.write_amplification,
            wear=self.wear if self.wear.max_erases > 0 else None,
        )


@dataclass
class SSDRunReport:
    """Cache-level and flash-level outcome of one simulated run."""

    simulation: SimulationResult
    device: CacheSSD
    host_bytes_per_day: float
    lifetime: LifetimeEstimate

    @property
    def cmt_miss_rate(self) -> float:
        """Translation-cache miss rate (0.0 when no CMT is attached)."""
        cmt = self.device.cmt
        return cmt.stats.miss_rate if cmt is not None else 0.0

    def summary(self) -> str:
        s = self.simulation.stats
        f = self.device.ftl.stats
        w = self.device.wear
        lines = [
            f"cache: hit={s.hit_rate:.3f} writes={s.files_written:,} "
            f"({s.bytes_written / 2**20:.1f} MiB)",
            f"flash: WA={f.write_amplification:.3f} erases={f.erases:,} "
            f"GC relocations={f.gc_pages_relocated:,} "
            f"wear spread={w.spread} levelling={w.levelling_efficiency:.3f}",
        ]
        cmt = self.device.cmt
        if cmt is not None:
            lines.append(
                f"cmt: miss={cmt.stats.miss_rate:.3f} "
                f"lookups={cmt.stats.lookups:,} "
                f"evictions={cmt.stats.evictions:,} "
                f"added latency={cmt.added_latency_us / 1e3:.1f} ms"
            )
        lines.append(
            f"lifetime: {self.lifetime.lifetime_days:,.0f} days at "
            f"{self.host_bytes_per_day / 2**30:.2f} GiB/day host writes"
        )
        return "\n".join(lines)


def simulate_on_ssd(
    trace: Trace,
    policy: CachePolicy,
    *,
    admission: AdmissionPolicy | None = None,
    device: CacheSSD | None = None,
    policy_name: str | None = None,
) -> SSDRunReport:
    """Replay ``trace`` with a device model attached.

    The returned report scales the run's write volume to bytes/day using
    the trace duration, then projects lifetime with the *measured* write
    amplification and wear state.
    """
    if device is None:
        device = CacheSSD.for_capacity(
            policy.capacity, mean_object_bytes=trace.mean_object_size()
        )
    result = simulate(
        trace, policy, admission=admission, observer=device,
        policy_name=policy_name,
    )
    days = trace.duration / 86400.0
    host_bytes_per_day = max(result.stats.bytes_written / days, 1.0)
    return SSDRunReport(
        simulation=result,
        device=device,
        host_bytes_per_day=host_bytes_per_day,
        lifetime=device.lifetime(host_bytes_per_day),
    )
