"""Flash geometry: pages, blocks, and over-provisioning.

Defaults model a small MLC device in the spirit of the paper's cache SSDs:
16 KiB pages, 256 pages/block, 7 % over-provisioning, 3 000 P/E cycles.
Geometry is deliberately independent of capacity so tests can use tiny
devices with the same code paths.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SSDGeometry"]


@dataclass(frozen=True)
class SSDGeometry:
    """Physical layout of the simulated device.

    Parameters
    ----------
    user_bytes:
        Advertised capacity (what the cache may address).
    page_bytes / pages_per_block:
        NAND program and erase granularities.
    overprovision:
        Extra physical space fraction reserved for the FTL (reduces GC
        write amplification).
    pe_cycle_limit:
        Rated program/erase endurance per block.
    """

    user_bytes: int
    page_bytes: int = 16 * 1024
    pages_per_block: int = 256
    overprovision: float = 0.07
    pe_cycle_limit: int = 3000

    def __post_init__(self) -> None:
        if self.user_bytes <= 0:
            raise ValueError("user_bytes must be positive")
        if self.page_bytes <= 0 or self.pages_per_block <= 0:
            raise ValueError("page_bytes and pages_per_block must be positive")
        if not 0.0 <= self.overprovision < 1.0:
            raise ValueError("overprovision must be in [0, 1)")
        if self.pe_cycle_limit <= 0:
            raise ValueError("pe_cycle_limit must be positive")

    # ------------------------------------------------------------- derived

    @property
    def block_bytes(self) -> int:
        return self.page_bytes * self.pages_per_block

    @property
    def user_pages(self) -> int:
        """Logical pages addressable by the host."""
        return -(-self.user_bytes // self.page_bytes)  # ceil division

    @property
    def physical_bytes(self) -> int:
        return int(self.user_bytes * (1.0 + self.overprovision))

    @property
    def n_blocks(self) -> int:
        """Physical blocks, always enough to hold every logical page + 2
        spare blocks so GC can always make progress."""
        needed_pages = self.user_pages
        blocks_for_user = -(-needed_pages // self.pages_per_block)
        op_blocks = int(blocks_for_user * self.overprovision)
        return blocks_for_user + max(op_blocks, 2)

    @property
    def total_pages(self) -> int:
        return self.n_blocks * self.pages_per_block

    def pages_for(self, n_bytes: int) -> int:
        """Pages needed to store an object of ``n_bytes``."""
        if n_bytes <= 0:
            raise ValueError("n_bytes must be positive")
        return -(-n_bytes // self.page_bytes)
