"""Background daily retraining for the serving node (§4.4.3, live).

The paper retrains its cost-sensitive CART every day at 05:00 on the
previous 24 hours of sampled log data.  :class:`Retrainer` reproduces that
loop against a running :class:`~repro.server.node.CacheNode`:

* **clock** — boundaries are *trace time* (the replay's logical clock,
  :attr:`CacheNode.trace_clock`), so a 200× speed-up replay retrains 200×
  as often in wall time, exactly like re-running history faster;
* **matured labels only** — a training sample at position *i* is usable
  once ``M`` further requests have been observed (the §4.4.2 maturity
  horizon); unmatured tail positions are excluded rather than mislabelled,
  the same delayed-label rule :mod:`repro.core.monitoring` scores with;
* **off the hot path** — ``fit`` runs in a worker thread via
  ``run_in_executor``; the event loop keeps serving GETs meanwhile;
* **atomic swap** — the fitted model is installed with
  :meth:`CacheNode.install_model`, a single reference assignment read once
  per micro-batch, so no request ever sees a half-swapped model.

Each retrain also scores the node's recorded verdict stream with
:func:`repro.core.monitoring.evaluate_admission_decisions`, giving the
drift telemetry (worst-window accuracy) that tells an operator whether
the daily cadence is keeping up.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass

import numpy as np

from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.labeling import one_time_labels
from repro.core.monitoring import evaluate_admission_decisions
from repro.core.training import sample_per_minute
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.obs.spans import NULL_TRACER
from repro.obs.structlog import get_logger

__all__ = ["RetrainerConfig", "Retrainer"]

logger = get_logger("server.retrainer")

DAY = 86400.0


@dataclass(frozen=True)
class RetrainerConfig:
    """Retraining schedule and training-set construction knobs."""

    period: float = DAY          # trace seconds between retrains
    retrain_hour: float = 5.0    # first boundary: retrain_hour o'clock
    train_window: float | None = None   # seconds of history (default: period)
    samples_per_minute: int = 100       # §3.1.1 log thinning
    min_train_samples: int = 50
    poll_seconds: float = 0.05   # wall-clock cadence of the boundary check
    monitor_window: int = 10_000

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= self.retrain_hour < 24.0:
            raise ValueError("retrain_hour must be in [0, 24)")
        if self.train_window is not None and self.train_window <= 0:
            raise ValueError("train_window must be positive")


class Retrainer:
    """Drives periodic (and on-demand ``RELOAD``) model refreshes."""

    def __init__(self, node, cfg: RetrainerConfig | None = None):
        if node.criteria is None or node.tracker is None:
            raise ValueError("retrainer requires a node with a classifier stack")
        self.node = node
        self.cfg = cfg if cfg is not None else RetrainerConfig()
        # Features are pure request-time functions, so precomputing the full
        # matrix is equivalent to buffering online-built rows (and is what
        # keeps `fit` self-contained in the worker thread).
        self._fm = extract_features(node.trace).select(PAPER_FEATURE_NAMES)
        self._rng = np.random.default_rng(node.cfg.seed)
        self.history: list[dict] = []
        self._m_retrains = node.registry.counter(
            "repro_retrains_total",
            "Retrain attempts by outcome (trained=yes swapped a model in).",
            ("trained",),
        )
        self._m_worst = node.registry.gauge(
            "repro_retrain_worst_window_accuracy",
            "Worst-window matured admission accuracy at the last retrain.",
        )
        self._m_train_rows = node.registry.gauge(
            "repro_retrain_train_samples",
            "Training rows selected for the last retrain attempt.",
        )

    @property
    def retrains(self) -> int:
        """Locally trained swaps (external :meth:`deploy_model` excluded)."""
        return sum(
            1
            for rec in self.history
            if rec["trained"] and not rec.get("deployed")
        )

    async def run(self) -> None:
        """Poll the node's trace clock and retrain at each boundary."""
        boundary = self.cfg.retrain_hour * 3600.0
        if boundary <= 0.0:
            boundary += self.cfg.period
        while True:
            await asyncio.sleep(self.cfg.poll_seconds)
            while self.node.trace_clock >= boundary:
                await self._retrain_at(boundary)
                boundary += self.cfg.period

    async def retrain_now(self) -> dict:
        """Immediate retrain on everything observed so far (RELOAD op)."""
        return await self._retrain_at(self.node.trace_clock)

    def deploy_model(self, model) -> dict:
        """Install a pre-fitted model through the atomic-swap path.

        The rolling-deploy hook: an operator (or the ``repro.scenario``
        orchestrator driving live nodes) pushes an externally trained model
        to this node without a local retrain.  The swap itself is
        :meth:`CacheNode.install_model` — a single reference assignment
        read once per micro-batch — so in a staggered fleet roll-out each
        node flips between batches, never inside one.  Recorded in
        :attr:`history` with ``deployed=True`` and counted under its own
        ``trained="deploy"`` outcome label.
        """
        record = {
            "t_cut": float(self.node.trace_clock),
            "trained": True,
            "deployed": True,
            "n_train": 0,
            "model_version": self.node.install_model(model),
            "worst_window_accuracy": None,
        }
        self._m_retrains.labels(trained="deploy").inc()
        logger.info(
            "deploy at t=%.0f: version=%d",
            record["t_cut"],
            record["model_version"],
            extra={
                "t_cut": record["t_cut"],
                "model_version": record["model_version"],
                "deployed": True,
            },
        )
        self.history.append(record)
        return record

    # ---------------------------------------------------------------- inner

    def _select_training_rows(self, t_cut: float) -> np.ndarray:
        node, cfg = self.node, self.cfg
        ts = node.trace.timestamps
        horizon = int(math.ceil(node.criteria.m_threshold))
        matured_end = node.processed - horizon
        if matured_end <= 0:
            return np.empty(0, dtype=np.int64)
        window = cfg.train_window if cfg.train_window is not None else cfg.period
        lo, hi = np.searchsorted(ts, [max(0.0, t_cut - window), t_cut])
        hi = min(hi, matured_end)
        if hi <= lo:
            return np.empty(0, dtype=np.int64)
        rows = np.arange(lo, hi)
        picked = sample_per_minute(ts[rows], cfg.samples_per_minute, self._rng)
        return rows[picked]

    async def _retrain_at(self, t_cut: float) -> dict:
        node, cfg = self.node, self.cfg
        record = {
            "t_cut": float(t_cut),
            "trained": False,
            "n_train": 0,
            "model_version": node.model_version,
            "worst_window_accuracy": None,
        }
        spans = getattr(node, "spans", None) or NULL_TRACER
        with spans.span("retrain", "retrainer", t_cut=float(t_cut)):
            # Snapshot: select matured rows and build their labels.  For
            # every selected row the full M-request lookahead lies inside
            # the observed prefix, so these labels equal the full-trace
            # oracle labels at those positions.
            with spans.span("snapshot", "retrainer") as snap:
                rows = self._select_training_rows(t_cut)
                record["n_train"] = int(rows.shape[0])
                n_obs = node.processed
                m = node.criteria.m_threshold
                X = y = None
                if rows.shape[0] >= cfg.min_train_samples:
                    prefix_oids = node.trace.object_ids[:n_obs]
                    labels = one_time_labels(prefix_oids, m)
                    y = labels[rows]
                    if np.unique(y).shape[0] == 2:
                        X = self._fm.X[rows]
                    else:
                        y = None
                snap.annotate(rows=record["n_train"])
            if X is not None:
                seed = int(self._rng.integers(0, 2**63 - 1))
                model = CostSensitiveClassifier(
                    DecisionTreeClassifier(
                        max_splits=node.cfg.max_splits, rng=seed
                    ),
                    CostMatrix(fn_cost=1.0, fp_cost=node.cfg.cost_v),
                )
                loop = asyncio.get_running_loop()
                with spans.span("fit", "retrainer", rows=record["n_train"]):
                    await loop.run_in_executor(None, model.fit, X, y)
                with spans.span("swap", "retrainer"):
                    record["model_version"] = node.install_model(model)
                record["trained"] = True

        # Drift telemetry on the matured verdict stream.
        horizon = int(math.ceil(m))
        if n_obs > horizon:
            quality = evaluate_admission_decisions(
                node.trace.object_ids[:n_obs],
                node.denied_mask[:n_obs],
                m,
                window_size=cfg.monitor_window,
            )
            worst = quality.worst_window()
            acc = quality.accuracy[worst]
            if np.isfinite(acc):
                record["worst_window_accuracy"] = float(acc)
                self._m_worst.set(float(acc))

        self._m_retrains.labels(trained="yes" if record["trained"] else "no").inc()
        self._m_train_rows.set(record["n_train"])
        logger.info(
            "retrain at t=%.0f: trained=%s n_train=%d version=%d worst_acc=%s",
            record["t_cut"],
            record["trained"],
            record["n_train"],
            record["model_version"],
            record["worst_window_accuracy"],
            extra={
                "t_cut": record["t_cut"],
                "trained": record["trained"],
                "n_train": record["n_train"],
                "model_version": record["model_version"],
                "worst_window_accuracy": record["worst_window_accuracy"],
            },
        )
        self.history.append(record)
        return record
