"""Open-loop trace-replay load generator for the cache-node service.

Replays a :class:`~repro.trace.records.Trace` against a running
:class:`~repro.server.node.CacheNodeServer` at a target request rate.
*Open loop* means send times come from a fixed schedule, not from response
arrival — the standard methodology for latency measurement under load
(closed-loop clients hide queueing delay by self-throttling).

Mechanics
---------
* Trace positions are partitioned round-robin over ``connections`` TCP
  connections; the server's sequencer reassembles global trace order, so
  multi-connection replay exercises exactly the concurrency the node's
  single-writer design must absorb.
* Each connection runs an independent *sender* (fires at scheduled times,
  pipelining without waiting for replies) and *reader* (correlates
  responses by echoed ``index`` and records client-observed latency).
* ``protocol="binary"`` replays through the compact v2 frames
  (:func:`repro.server.protocol.pack_get_request`): the sender packs
  requests into one buffer flushed at schedule gaps, the reader parses
  chunked socket reads through a reused :class:`FrameDecoder` — the
  client-side twin of the server's hot path.  ``"json"`` keeps the
  original frame-at-a-time text path; server verdicts and counters are
  bit-identical across the two.
* After the replay, one extra connection fetches the server's STATS
  snapshot so the client report and the server's own counters travel
  together.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from repro.obs.registry import latency_buckets
from repro.obs.spans import NULL_TRACER
from repro.server.metrics import timing_stats
from repro.server.protocol import (
    BIN_GET,
    BIN_GET_ERR,
    BIN_GET_OK,
    BIN_MAGIC,
    FLAG_HIT,
    FrameDecoder,
    ProtocolError,
    read_message,
    write_message,
)
from repro.trace.records import Trace

__all__ = ["LoadgenConfig", "LoadgenResult", "run_loadgen", "replay"]

#: Flush the binary sender's request buffer at this size even without a
#: schedule gap — bounds client memory at unsustainable offered rates.
_SEND_FLUSH_BYTES = 256 * 1024

#: One BIN_GET frame as a numpy record — big-endian fields matching
#: :func:`repro.server.protocol.pack_get_request` byte for byte, so a
#: connection's whole request stream packs in one vectorised ``tobytes``.
_GET_WIRE_DTYPE = np.dtype(
    [
        ("magic", "u1"),
        ("op", "u1"),
        ("length", ">u2"),
        ("index", ">u4"),
        ("oid", ">u4"),
        ("size", ">u4"),
    ]
)
_GET_BODY_BYTES = 12  # index + oid + size, three u32


@dataclass(frozen=True)
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 0
    rate: float = 2000.0        # requests/second (open-loop schedule)
    connections: int = 4
    start: int = 0              # first trace position to replay
    limit: int | None = None    # positions replayed: [start, start+limit)
    fetch_stats: bool = True
    protocol: str = "json"      # "json" | "binary" (v2 frames)

    def __post_init__(self):
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.connections < 1:
            raise ValueError("connections must be >= 1")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1")
        if self.protocol not in ("json", "binary"):
            raise ValueError(f"unknown protocol: {self.protocol!r}")


@dataclass
class LoadgenResult:
    """Client-side view of one replay, plus the server's STATS snapshot."""

    sent: int = 0
    completed: int = 0
    errors: int = 0
    hits: int = 0
    duration_seconds: float = 0.0
    target_rate: float = 0.0
    latency: dict = field(default_factory=dict)
    server_stats: dict | None = None

    @property
    def achieved_rate(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds

    @property
    def hit_rate(self) -> float:
        return self.hits / self.completed if self.completed else 0.0

    def summary(self) -> str:
        lat = self.latency or timing_stats([])
        lines = [
            f"sent {self.sent:,} requests, {self.completed:,} completed, "
            f"{self.errors:,} errors in {self.duration_seconds:.2f} s",
            f"throughput: {self.achieved_rate:,.0f} req/s achieved "
            f"({self.target_rate:,.0f} req/s offered)",
            f"client hit rate: {self.hit_rate:.4f}",
            f"latency: p50 {1e3 * lat['p50']:.3f} ms  "
            f"p95 {1e3 * lat['p95']:.3f} ms  "
            f"p99 {1e3 * lat['p99']:.3f} ms  "
            f"max {1e3 * lat['max']:.3f} ms",
        ]
        if self.server_stats is not None:
            s = self.server_stats
            lines.append(
                f"server: hit rate {s['hit_rate']:.4f}, "
                f"{s['files_written']:,} SSD writes, "
                f"model v{s['model_version']}"
            )
        return "\n".join(lines)


async def _replay_connection(
    cfg: LoadgenConfig,
    trace: Trace,
    positions: np.ndarray,
    send_times: np.ndarray,
    t0: float,
    result: LoadgenResult,
    latencies: list[float],
    conn_id: int = 0,
    tracer=None,
) -> None:
    spans = tracer or NULL_TRACER
    reader, writer = await asyncio.open_connection(cfg.host, cfg.port)
    oids = trace.object_ids
    sizes = trace.sizes
    in_flight: dict[int, float] = {}
    expected = positions.shape[0]
    binary = cfg.protocol == "binary"

    async def read_responses() -> None:
        done = 0
        # The reader task is created before the send span is entered, so
        # this recv span roots its own track — send and recv overlap in
        # time and must not share a Chrome tid.
        with spans.span("recv", "loadgen", connection=conn_id) as rspan:
            try:
                if binary:
                    # Chunked reads through the incremental decoder: one
                    # socket read yields every pipelined response frame.
                    # Latency is stamped once per chunk — the arrival time
                    # of the read that carried the frame — and counters
                    # accumulate in locals, committed per chunk.
                    decoder = FrameDecoder()
                    pop = in_flight.pop
                    append = latencies.append
                    while done < expected:
                        data = await reader.read(256 * 1024)
                        if not data:
                            break
                        now = time.perf_counter()
                        completed = hits = errors = 0
                        for frame in decoder.feed(data):
                            if type(frame) is dict:
                                continue
                            op = frame[0]
                            if op == BIN_GET_OK:
                                done += 1
                                sent_at = pop(frame[1], None)
                                completed += 1
                                if frame[2] & FLAG_HIT:
                                    hits += 1
                                if sent_at is not None:
                                    append(now - sent_at)
                            elif op == BIN_GET_ERR:
                                done += 1
                                pop(frame[1], None)
                                errors += 1
                        result.completed += completed
                        result.hits += hits
                        result.errors += errors
                else:
                    while done < expected:
                        msg = await read_message(reader)
                        if msg is None:
                            break
                        if msg.get("op") != "GET":
                            continue
                        done += 1
                        sent_at = in_flight.pop(msg.get("index"), None)
                        if not msg.get("ok"):
                            result.errors += 1
                            continue
                        result.completed += 1
                        if msg.get("hit"):
                            result.hits += 1
                        if sent_at is not None:
                            latencies.append(time.perf_counter() - sent_at)
            except (ConnectionError, OSError, ProtocolError):
                pass  # server went away mid-stream
            rspan.annotate(responses=done)
        # Anything never answered (server death, early close) is an error.
        result.errors += expected - done

    async def send_json(loop) -> None:
        for pos, due in zip(positions.tolist(), send_times.tolist()):
            delay = t0 + due - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            in_flight[pos] = time.perf_counter()
            result.sent += 1
            await write_message(
                writer,
                {
                    "op": "GET",
                    "index": pos,
                    "oid": int(oids[pos]),
                    "size": int(sizes[pos]),
                },
            )

    async def send_binary(loop) -> None:
        # The whole wire stream for this connection is packed up front in
        # one vectorised shot (the frames depend only on the trace), so
        # the timing loop schedules and stamps but never serialises.
        # Flushes happen when the schedule says sleep (the socket would
        # sit idle anyway) or at the size bound — one write+drain per
        # burst instead of per request.
        frames = np.empty(expected, dtype=_GET_WIRE_DTYPE)
        frames["magic"] = BIN_MAGIC
        frames["op"] = BIN_GET
        frames["length"] = _GET_BODY_BYTES
        frames["index"] = positions
        frames["oid"] = oids[positions]
        frames["size"] = sizes[positions]
        wire = memoryview(frames.tobytes())
        stride = _GET_WIRE_DTYPE.itemsize
        start = 0  # byte offset of the first unflushed frame
        stamp = time.perf_counter
        sent = 0
        for i, (pos, due) in enumerate(
            zip(positions.tolist(), send_times.tolist())
        ):
            delay = t0 + due - loop.time()
            end = i * stride
            if delay > 0 or end - start >= _SEND_FLUSH_BYTES:
                if end > start:
                    writer.write(wire[start:end])
                    start = end
                    result.sent += sent
                    sent = 0
                    await writer.drain()
                if delay > 0:
                    await asyncio.sleep(delay)
            in_flight[pos] = stamp()
            sent += 1
        if len(wire) > start:
            writer.write(wire[start:])
            await writer.drain()
        result.sent += sent

    reader_task = asyncio.ensure_future(read_responses())
    try:
        loop = asyncio.get_running_loop()
        try:
            with spans.span(
                "send", "loadgen", connection=conn_id, requests=expected
            ):
                await (send_binary(loop) if binary else send_json(loop))
        except (ConnectionError, OSError):
            pass  # server gone; the reader accounts for the shortfall
        await reader_task
    finally:
        if not reader_task.done():
            reader_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def fetch_stats(host: str, port: int) -> dict:
    """One-shot STATS request on a fresh connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await write_message(writer, {"op": "STATS"})
        msg = await read_message(reader)
        if msg is None or not msg.get("ok"):
            raise ConnectionError(f"STATS failed: {msg!r}")
        return msg["stats"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _publish(result: LoadgenResult, latencies: list[float], registry) -> None:
    """Mirror a finished replay into a client-side metrics registry."""
    sent = registry.counter(
        "repro_loadgen_requests_total",
        "Loadgen requests by outcome.",
        ("outcome",),
    )
    sent.labels(outcome="completed").inc(result.completed)
    sent.labels(outcome="error").inc(result.errors)
    registry.counter(
        "repro_loadgen_hits_total", "Client-observed cache hits."
    ).inc(result.hits)
    registry.gauge(
        "repro_loadgen_achieved_rate",
        "Achieved request rate of the last replay (req/s).",
    ).set(result.achieved_rate)
    hist = registry.histogram(
        "repro_loadgen_latency_seconds",
        "Client-observed service latency.",
        buckets=latency_buckets(),
    )
    for lat in latencies:
        hist.observe(lat)


async def run_loadgen(
    trace: Trace, cfg: LoadgenConfig, *, registry=None, tracer=None
) -> LoadgenResult:
    """Replay ``trace`` positions ``[start, start+limit)`` open-loop.

    When ``registry`` (a :class:`~repro.obs.registry.MetricsRegistry`) is
    given, the finished replay is published into it as
    ``repro_loadgen_*`` metrics — useful when the loadgen itself is being
    scraped or its numbers belong next to the node's in one exposition.
    When ``tracer`` (a :class:`~repro.obs.spans.Tracer`) is given, each
    connection records coarse ``send``/``recv`` spans plus one overall
    ``replay`` span (per connection, not per request — the open-loop
    schedule must not pay tracing costs inside the send timing loop).
    """
    n = trace.n_accesses - cfg.start
    if cfg.limit is not None:
        n = min(n, cfg.limit)
    if n <= 0:
        raise ValueError("nothing to replay: start beyond trace end")
    positions = np.arange(cfg.start, cfg.start + n)
    send_times = np.arange(n) / cfg.rate  # open-loop schedule, uniform rate

    result = LoadgenResult(target_rate=cfg.rate)
    latencies: list[float] = []
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    t_wall = time.perf_counter()
    t_wall_ns = time.perf_counter_ns()
    await asyncio.gather(
        *(
            _replay_connection(
                cfg,
                trace,
                positions[c :: cfg.connections],
                send_times[c :: cfg.connections],
                t0,
                result,
                latencies,
                conn_id=c,
                tracer=tracer,
            )
            for c in range(cfg.connections)
        )
    )
    result.duration_seconds = time.perf_counter() - t_wall
    if tracer is not None and tracer.enabled:
        # Recorded post-hoc on its own track: entering a span here would
        # leak its track into every connection task created under it.
        tracer.add(
            "replay", "loadgen", t_wall_ns, time.perf_counter_ns(),
            track=tracer.new_track(),
            args={"sent": result.sent, "connections": cfg.connections},
        )
    result.latency = timing_stats(latencies)
    if registry is not None:
        _publish(result, latencies, registry)
    if cfg.fetch_stats:
        try:
            result.server_stats = await fetch_stats(cfg.host, cfg.port)
        except (ConnectionError, OSError):
            result.server_stats = None  # server already gone
    return result


def replay(trace: Trace, **kwargs) -> LoadgenResult:
    """Synchronous convenience wrapper: ``replay(trace, port=..., rate=...)``."""
    return asyncio.run(run_loadgen(trace, LoadgenConfig(**kwargs)))
