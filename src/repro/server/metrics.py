"""STATS snapshots for the serving node.

:func:`metrics_snapshot` collapses the node's counters — cache statistics,
admission verdicts, micro-batched ``t_classify`` timing, service latency,
drift-monitor state and the full metrics-registry contents — into one
JSON-able dict.  It is the *single* source for both observation surfaces:
the TCP ``STATS`` verb and the HTTP ``/statsz`` endpoint call this same
function, so the two can never disagree.
:func:`format_metrics` renders it as an aligned table through
:func:`repro.reporting.format_table`, so served numbers read exactly like
the offline reports.

Timing data is summarised as ``{count, mean, p50, p95, p99, max}`` in
seconds via :func:`timing_stats`, which accepts either a raw array or a
bounded :class:`~repro.obs.registry.Reservoir` (count/mean/max exact,
percentiles from the retained sample).
"""

from __future__ import annotations

import time

import numpy as np

from repro.obs.registry import Reservoir
from repro.reporting import format_table

__all__ = [
    "timing_stats",
    "admission_timing",
    "metrics_snapshot",
    "format_metrics",
]

_EMPTY = {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


def timing_stats(seconds) -> dict:
    """Count/mean/percentiles (seconds) of a timing array or reservoir."""
    if isinstance(seconds, Reservoir):
        return seconds.summary()
    arr = np.asarray(seconds, dtype=np.float64)
    if arr.size == 0:
        return dict(_EMPTY)
    p50, p95, p99 = np.percentile(arr, [50, 95, 99])
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "max": float(arr.max()),
    }


def admission_timing(admission) -> dict:
    """Per-decision timing of an :class:`OnlineClassifierAdmission`."""
    return timing_stats(admission.decision_times)


def metrics_snapshot(node, server=None) -> dict:
    """One coherent view of a node's counters (plus serving-layer state).

    Safe to call from the event loop at any time: every value is read from
    single-writer state between micro-batches.
    """
    stats = node.stats
    snap = {
        "processed": node.processed,
        "trace_requests": node.trace.n_accesses,
        "trace_clock": node.trace_clock,
        "requests": stats.requests,
        "hits": stats.hits,
        "hit_rate": stats.hit_rate,
        "byte_hit_rate": stats.byte_hit_rate,
        "files_written": stats.files_written,
        "bytes_written": stats.bytes_written,
        "file_write_rate": stats.file_write_rate,
        "byte_write_rate": stats.byte_write_rate,
        "evictions": stats.evictions,
        "admissions_denied": stats.admissions_denied,
        "rectified_admits": node.rectified_admits,
        "classifier": node.model is not None,
        "model_version": node.model_version,
        "t_classify": timing_stats(node.classify_timing),
    }
    cache = node.cache
    if hasattr(cache, "l1_hits"):
        snap["l1_hits"] = cache.l1_hits
        snap["l2_hits"] = cache.l2_hits
    if node.drift is not None:
        snap["drift"] = node.drift.snapshot()
    if node.tracer is not None:
        tracer = node.tracer
        snap["trace"] = {
            "sample_rate": tracer.sample_rate,
            "capacity": tracer.capacity,
            "seen": tracer.seen,
            "sampled": tracer.sampled,
            "buffered": len(tracer),
            "dropped": tracer.dropped,
        }
    if node.spans is not None:
        spans = node.spans
        snap["spans"] = {
            "enabled": spans.enabled,
            "capacity": spans.capacity,
            "recorded": spans.recorded,
            "buffered": len(spans),
            "dropped": spans.dropped,
        }
    snap["ledger"] = node.ledger.snapshot()
    if server is not None:
        snap["uptime_seconds"] = (
            time.perf_counter() - server.started_at if server.started_at else 0.0
        )
        snap["queue_depth"] = server.queue_depth
        snap["service_latency"] = timing_stats(server.service_latencies)
        if server.retrainer is not None:
            snap["retrains"] = server.retrainer.retrains
            if server.retrainer.history:
                last = server.retrainer.history[-1]
                snap["worst_window_accuracy"] = last["worst_window_accuracy"]
    # The registry's families last: identical numbers on the TCP STATS verb
    # and the HTTP /statsz endpoint, bucket-for-bucket.
    snap["metrics"] = node.registry.snapshot()
    return snap


def _fmt_seconds(s: float) -> str:
    if s >= 1e-3:
        return f"{1e3 * s:.3f} ms"
    return f"{1e6 * s:.2f} µs"


def format_metrics(snap: dict) -> str:
    """Render a snapshot as the aligned table printed on shutdown/STATS."""
    rows = [
        ["requests served", f"{snap['requests']:,}"],
        ["file hit rate", f"{snap['hit_rate']:.4f}"],
        ["byte hit rate", f"{snap['byte_hit_rate']:.4f}"],
        ["files written (SSD)", f"{snap['files_written']:,}"],
        ["bytes written (SSD)", f"{snap['bytes_written']:,}"],
        ["file write rate", f"{snap['file_write_rate']:.4f}"],
        ["byte write rate", f"{snap['byte_write_rate']:.4f}"],
        ["admissions denied", f"{snap['admissions_denied']:,}"],
        ["rectified admits", f"{snap['rectified_admits']:,}"],
        ["classifier", "on" if snap["classifier"] else "off"],
        ["model version", str(snap["model_version"])],
    ]
    if "l1_hits" in snap:
        rows.append(["DRAM (L1) hits", f"{snap['l1_hits']:,}"])
        rows.append(["SSD (L2) hits", f"{snap['l2_hits']:,}"])
    t = snap["t_classify"]
    if t["count"]:
        rows.append(
            [
                "t_classify (mean/p99)",
                f"{_fmt_seconds(t['mean'])} / {_fmt_seconds(t['p99'])}",
            ]
        )
    lat = snap.get("service_latency")
    if lat and lat["count"]:
        rows.append(
            [
                "service latency (p50/p95/p99)",
                f"{_fmt_seconds(lat['p50'])} / {_fmt_seconds(lat['p95'])} / "
                f"{_fmt_seconds(lat['p99'])}",
            ]
        )
    drift = snap.get("drift")
    if drift:
        if drift["last_accuracy"] is not None:
            rows.append(
                [
                    "drift accuracy (last/worst)",
                    f"{drift['last_accuracy']:.4f} / {drift['worst_accuracy']:.4f}",
                ]
            )
        rows.append(["drift alarms", str(drift["alarms"])])
    tr = snap.get("trace")
    if tr:
        rows.append(
            [
                "trace events (buffered/sampled)",
                f"{tr['buffered']:,} / {tr['sampled']:,}",
            ]
        )
    sp = snap.get("spans")
    if sp:
        rows.append(
            [
                "spans (buffered/recorded)",
                f"{sp['buffered']:,} / {sp['recorded']:,}",
            ]
        )
    led = snap.get("ledger")
    if led and led["total_writes"]:
        rows.append(
            [
                "writes avoided (ledger)",
                f"{led['avoided_writes']:,} "
                f"({led['avoided_bytes']:,} bytes)",
            ]
        )
    if "retrains" in snap:
        rows.append(["retrains", str(snap["retrains"])])
    if "uptime_seconds" in snap:
        rows.append(["uptime", f"{snap['uptime_seconds']:.2f} s"])
    return format_table(["quantity", "value"], rows)
