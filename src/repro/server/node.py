"""The asyncio cache-node service: a runnable single-server deployment.

Two layers, deliberately separated:

* :class:`CacheNode` — a *synchronous* state machine owning all cache
  state (DRAM+SSD hierarchy, online feature tracker, classifier, history
  table, statistics).  Its only mutation entry point is
  :meth:`CacheNode.process_batch`, which replays a contiguous run of
  trace positions exactly as :func:`repro.cache.simulator.simulate`
  would — so a served replay is bit-identical to the offline simulation
  (:func:`replay_offline` builds the reference stack; the equivalence is
  tested).
* :class:`CacheNodeServer` — the asyncio TCP front end.  Connection
  handlers parse frames and enqueue requests into one bounded queue
  (backpressure: a full queue suspends the handler, which stops reading
  its socket); a **single writer task** drains the queue, sequences
  requests by trace index, and applies them in micro-batches.  Because
  every cache mutation flows through that one task, no locking is needed
  and concurrent clients cannot interleave partial updates.

Micro-batching: classifier features depend only on the *request stream*
(never on cache state), so the writer computes feature rows for a whole
batch, runs **one** vectorised ``model.predict`` call, and only then
applies verdicts + history-table rectification + cache accesses in strict
trace order.  Admission semantics are unchanged — the verdict for a
request that turns out to hit is simply discarded, exactly as the offline
path never computes it.

The model reference is read **once per batch**, so
:meth:`CacheNode.install_model` (the retrainer's atomic swap) can never
split a batch across two models.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from dataclasses import dataclass

import numpy as np

from repro.cache.base import CachePolicy, CacheStats
from repro.cache.hierarchy import HierarchicalCache
from repro.cache.simulator import SimulationResult, make_policy, simulate
from repro.core.admission import AlwaysAdmit
from repro.core.criteria import Criteria, solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import ONE_TIME, one_time_labels, reaccess_distances
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.fastpath import fast_predictor
from repro.ml.tree import DecisionTreeClassifier
from repro.obs.drift import DriftMonitor
from repro.obs.exporter import MetricsExporter
from repro.obs.ledger import WriteLedger
from repro.obs.registry import MetricsRegistry, Reservoir, latency_buckets
from repro.obs.spans import Tracer
from repro.obs.structlog import get_logger
from repro.obs.tracing import DecisionTrace
from repro.server.protocol import (
    BIN_GET,
    FrameDecoder,
    ProtocolError,
    encode_message,
    error_response,
    pack_get_error,
    pack_get_response,
)
from repro.trace.records import Trace

logger = get_logger("server.node")

__all__ = [
    "NodeConfig",
    "CacheNode",
    "CacheNodeServer",
    "build_cache",
    "solve_node_criteria",
    "train_seed_model",
    "replay_offline",
    "run_server",
]


@dataclass(frozen=True)
class NodeConfig:
    """Everything needed to build one cache node deterministically.

    The same config drives both the live server (:class:`CacheNode`) and
    the offline reference run (:func:`replay_offline`); determinism of the
    seed model (``seed``) is what makes served results reproducible.
    """

    policy: str = "lru"
    capacity_fraction: float | None = 0.01
    capacity_bytes: int | None = None
    dram_fraction: float = 0.05     # 0 disables the DRAM tier
    classifier: bool = True
    cost_v: float = 2.0
    train_seconds: float = 86400.0  # seed model trains on this trace prefix
    max_splits: int = 30
    min_train_samples: int = 50
    seed: int = 0
    max_batch: int = 256
    #: Fill the micro-batch feature matrix with the tracker's vectorised
    #: columnar gathers (``features_into_batch``).  Off = the per-row
    #: ``features_into`` loop; verdicts, counters and ledger totals are
    #: bit-identical either way (tested + asserted by the throughput bench).
    columnar: bool = True
    #: Bound on every timing structure (t_classify / decision / service
    #: latency reservoirs): O(timing_capacity) memory however long the
    #: node runs, with exact counts and sampled percentiles.
    timing_capacity: int = 10_000

    def resolve_capacity(self, trace: Trace) -> int:
        if (self.capacity_fraction is None) == (self.capacity_bytes is None):
            raise ValueError(
                "give exactly one of capacity_fraction / capacity_bytes"
            )
        if self.capacity_bytes is not None:
            if self.capacity_bytes <= 0:
                raise ValueError("capacity_bytes must be positive")
            return int(self.capacity_bytes)
        if self.capacity_fraction <= 0:
            raise ValueError("capacity_fraction must be positive")
        return max(1, int(self.capacity_fraction * trace.footprint_bytes))


def build_cache(trace: Trace, cfg: NodeConfig) -> CachePolicy:
    """The node's cache stack: SSD-tier policy, optionally DRAM-fronted."""
    ssd = make_policy(cfg.policy, cfg.resolve_capacity(trace), trace)
    if cfg.dram_fraction <= 0:
        return ssd
    return HierarchicalCache.with_lru_dram(ssd, dram_fraction=cfg.dram_fraction)


def solve_node_criteria(trace: Trace, cfg: NodeConfig) -> Criteria:
    """The §4.3 criterion ``M`` for this node's capacity."""
    distances = reaccess_distances(trace.object_ids)
    return solve_criteria(
        distances, cfg.resolve_capacity(trace), trace.mean_object_size()
    )


def history_capacity(criteria: Criteria) -> int:
    """§4.4.2 sizing with a small floor for tiny test workloads."""
    return max(
        8,
        HistoryTable.paper_capacity(
            criteria.m_threshold, criteria.hit_rate, criteria.one_time_share
        ),
    )


def train_seed_model(trace: Trace, cfg: NodeConfig, criteria: Criteria):
    """Bootstrap classifier: cost-sensitive CART on the first trace day.

    Mirrors how a deployment starts — a model trained offline on
    yesterday's log before the node goes live (the retrainer then takes
    over the §4.4.3 daily refresh).  Returns ``None`` when the prefix is
    too small or single-class; the node then admits everything.
    """
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    mask = trace.timestamps < cfg.train_seconds
    if int(mask.sum()) < cfg.min_train_samples:
        return None
    y = labels[mask]
    if np.unique(y).shape[0] < 2:
        return None
    fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
    model = CostSensitiveClassifier(
        DecisionTreeClassifier(max_splits=cfg.max_splits, rng=cfg.seed),
        CostMatrix(fn_cost=1.0, fp_cost=cfg.cost_v),
    )
    return model.fit(fm.X[mask], y)


def replay_offline(trace: Trace, cfg: NodeConfig, *, model=None) -> SimulationResult:
    """The offline reference: ``simulate()`` over the identical stack.

    Builds the same cache, criterion, seed model (unless one is passed in)
    and history table as :class:`CacheNode` and replays through the
    simulator's per-request admission path.  A server that replays the
    same trace (without retraining) must report the same hit/write
    counters — the acceptance test for the serving layer.
    """
    cache = build_cache(trace, cfg)
    if not cfg.classifier:
        return simulate(
            trace, cache, admission=AlwaysAdmit(), policy_name=cfg.policy
        )
    criteria = solve_node_criteria(trace, cfg)
    if model is None:
        model = train_seed_model(trace, cfg, criteria)
    if model is None:
        return simulate(
            trace, cache, admission=AlwaysAdmit(), policy_name=cfg.policy
        )
    admission = OnlineClassifierAdmission(
        model,
        OnlineFeatureTracker(trace),
        criteria.m_threshold,
        HistoryTable(history_capacity(criteria)),
    )
    return simulate(trace, cache, admission=admission, policy_name=cfg.policy)


class CacheNode:
    """Single-writer cache-node state machine over a loaded trace.

    All mutation goes through :meth:`process_batch` with a *contiguous*
    ascending run of trace positions starting at :attr:`processed` — the
    serving layer's sequencer guarantees that even when concurrent
    connections deliver requests out of order.

    Observability: every node owns (or shares) a
    :class:`~repro.obs.registry.MetricsRegistry` and keeps its counters in
    lock-step with :attr:`stats` (incremented once per batch from the
    stats deltas, so the hot loop stays unchanged).  An optional
    :class:`~repro.obs.tracing.DecisionTrace` samples per-request events
    and an optional :class:`~repro.obs.drift.DriftMonitor` scores matured
    verdicts live.
    """

    def __init__(
        self,
        trace: Trace,
        cfg: NodeConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        tracer: DecisionTrace | None = None,
        drift: DriftMonitor | None = None,
        spans: Tracer | None = None,
    ):
        self.trace = trace
        self.cfg = cfg if cfg is not None else NodeConfig()
        self._oid_list = trace.object_ids.tolist()
        self._size_list = trace.catalog["size"][trace.object_ids].tolist()
        self._ts = trace.timestamps

        self.criteria: Criteria | None = None
        self.model = None
        self._predictor = None  # compiled twin of self.model (fastpath)
        self.model_version = 0
        self.tracker: OnlineFeatureTracker | None = None
        self.history: HistoryTable | None = None
        self._rows: np.ndarray | None = None
        if self.cfg.classifier:
            self.criteria = solve_node_criteria(trace, self.cfg)
            self.model = train_seed_model(trace, self.cfg, self.criteria)
            if self.model is not None:
                self.model_version = 1
                self._predictor = fast_predictor(self.model)
                self.tracker = OnlineFeatureTracker(trace)
                self.history = HistoryTable(history_capacity(self.criteria))
                # Reused micro-batch feature buffer; oversized batches
                # (direct process_batch callers) fall back to a fresh array.
                self._rows = np.empty(
                    (max(1, self.cfg.max_batch), len(self.tracker.feature_names))
                )

        self.cache = build_cache(trace, self.cfg)
        self.stats = CacheStats()
        self.processed = 0
        self.denied_mask = np.zeros(trace.n_accesses, dtype=bool)
        # Micro-batched t_classify telemetry: each inference batch of n
        # decisions contributes n amortised ``seconds / n`` observations to
        # a bounded reservoir (exact count/mean/max, sampled percentiles).
        self.classify_timing = Reservoir(
            capacity=self.cfg.timing_capacity, seed=self.cfg.seed
        )

        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self.drift = drift
        #: Optional span tracer shared with the serving layer/retrainer;
        #: ``None`` (the default) keeps the hot path span-free.
        self.spans = spans
        #: Write provenance: on a single live node every insertion is an
        #: admission accept labelled with the deciding model version, and
        #: every denial is an avoided write (exact, batch-delta updates).
        self.ledger = WriteLedger(registry=self.registry)
        self._bind_instruments()

    def _bind_instruments(self) -> None:
        reg = self.registry
        requests = reg.counter(
            "repro_requests_total", "Requests processed by result.", ("result",)
        )
        req_bytes = reg.counter(
            "repro_bytes_total", "Requested bytes by result.", ("result",)
        )
        self._m_hits = requests.labels(result="hit")
        self._m_misses = requests.labels(result="miss")
        self._m_hit_bytes = req_bytes.labels(result="hit")
        self._m_miss_bytes = req_bytes.labels(result="miss")
        self._m_writes = reg.counter(
            "repro_ssd_writes_total", "Objects written to the SSD tier."
        )
        self._m_write_bytes = reg.counter(
            "repro_ssd_bytes_written_total", "Bytes written to the SSD tier."
        )
        self._m_evictions = reg.counter(
            "repro_evictions_total", "Objects evicted from the cache."
        )
        verdicts = reg.counter(
            "repro_admission_verdicts_total",
            "Admission outcomes on misses (denied / rectified admits).",
            ("verdict",),
        )
        self._m_denied = verdicts.labels(verdict="denied")
        self._m_rectified = verdicts.labels(verdict="rectified")
        self._m_classify = reg.histogram(
            "repro_classify_seconds",
            "Amortised per-decision classification time (Eq.-6 t_classify).",
            buckets=latency_buckets(),
        )
        self._m_position = reg.gauge(
            "repro_trace_position", "Replay cursor (requests processed)."
        )
        self._m_model_version = reg.gauge(
            "repro_model_version", "Version of the installed classifier."
        )
        self._m_model_version.set(self.model_version)
        # Request-lifecycle stage timing: feature_build / batch_inference /
        # cache_ops land here once per micro-batch, queue_wait and reply are
        # bound by the serving layer against the same family.
        stage = reg.histogram(
            "repro_stage_seconds",
            "Request-lifecycle stage wall time (one observation per "
            "micro-batch; queue_wait counts every request at the batch "
            "mean).",
            ("stage",),
            buckets=latency_buckets(),
        )
        self._m_stage_feature = stage.labels(stage="feature_build")
        self._m_stage_inference = stage.labels(stage="batch_inference")
        self._m_stage_cache = stage.labels(stage="cache_ops")
        # Sampler accounting (previously reachable only through the TCP
        # TRACE verb / STATS): decision-trace stream counts and the bounded
        # reservoirs' seen-vs-retained sizes, refreshed once per batch.
        trace_g = reg.gauge(
            "repro_decision_trace_events",
            "DecisionTrace stream accounting (seen / sampled / dropped).",
            ("state",),
        )
        self._m_trace_seen = trace_g.labels(state="seen")
        self._m_trace_sampled = trace_g.labels(state="sampled")
        self._m_trace_dropped = trace_g.labels(state="dropped")
        res_seen = reg.gauge(
            "repro_reservoir_seen",
            "Observations offered to a bounded timing reservoir.",
            ("reservoir",),
        )
        res_kept = reg.gauge(
            "repro_reservoir_retained",
            "Samples currently retained by a bounded timing reservoir.",
            ("reservoir",),
        )
        self._m_classify_seen = res_seen.labels(reservoir="t_classify")
        self._m_classify_retained = res_kept.labels(reservoir="t_classify")
        spans_g = reg.gauge(
            "repro_spans",
            "Span-ring accounting (recorded / buffered / dropped).",
            ("state",),
        )
        self._m_spans_recorded = spans_g.labels(state="recorded")
        self._m_spans_buffered = spans_g.labels(state="buffered")
        self._m_spans_dropped = spans_g.labels(state="dropped")

    # ------------------------------------------------------------ telemetry

    @property
    def trace_clock(self) -> float:
        """Trace time of the last processed request (0 before the first)."""
        return float(self._ts[self.processed - 1]) if self.processed else 0.0

    @property
    def rectified_admits(self) -> int:
        return self.history.rectifications if self.history is not None else 0

    def expected_oid(self, index: int) -> int:
        """The object id the loaded trace holds at ``index`` (validation)."""
        return self._oid_list[index]

    def classify_times(self) -> np.ndarray:
        """Retained amortised per-decision classification seconds.

        Each micro-batch contributes ``size`` equal entries of
        ``seconds / size`` — the per-decision cost actually paid under
        batched inference (the served analogue of
        :attr:`repro.core.online.OnlineClassifierAdmission.decision_times`).
        Bounded by ``cfg.timing_capacity``; exact totals live on
        :attr:`classify_timing`.
        """
        return self.classify_timing.values()

    # ------------------------------------------------------------- mutation

    def install_model(self, model) -> int:
        """Atomically swap the admission classifier; returns the version.

        A plain attribute assignment: the processing loop binds the model
        reference once per batch, so a swap takes effect at the next batch
        boundary and can never split a batch.  The compiled fast-path twin
        is rebuilt here (off the hot path) so inference always matches the
        installed model.
        """
        self.model = model
        self._predictor = fast_predictor(model) if model is not None else None
        if (
            self._rows is None
            and model is not None
            and self.tracker is not None
        ):
            self._rows = np.empty(
                (max(1, self.cfg.max_batch), len(self.tracker.feature_names))
            )
        self.model_version += 1
        self._m_model_version.set(self.model_version)
        logger.info(
            "installed model version %d", self.model_version,
            extra={"model_version": self.model_version},
        )
        return self.model_version

    def reset(self) -> None:
        """Fresh cache/statistics/telemetry state; the trained model is kept."""
        self.cache = build_cache(self.trace, self.cfg)
        self.stats = CacheStats()
        self.processed = 0
        self.denied_mask[:] = False
        self.classify_timing.clear()
        if self.tracker is not None:
            self.tracker.reset()
        if self.history is not None:
            self.history.clear()
        if self.tracer is not None:
            self.tracer.clear()
        if self.drift is not None:
            self.drift.reset()
        if self.spans is not None:
            self.spans.clear()
        self.ledger.clear()
        self.registry.reset()
        self._m_model_version.set(self.model_version)

    def process_batch(self, indices: list[int]) -> list[dict]:
        """Apply a contiguous run of trace requests; returns GET responses.

        Semantics per request are identical to the simulator loop with
        :class:`~repro.core.online.OnlineClassifierAdmission`; only the
        *timing* of classifier inference differs (one vectorised call per
        batch instead of one per miss).
        """
        if not indices:
            return []
        spans = self.spans
        if spans is None or not spans.enabled:
            return self._process_batch(indices, None)
        # Root of the node-side span tree; the serving layer's
        # ``request_batch`` span (when present) wraps this via the
        # contextvar track, so the drained trace nests correctly.
        with spans.span(
            "process_batch", "node", n=len(indices), first=indices[0]
        ):
            return self._process_batch(indices, spans)

    def _process_batch(self, indices: list[int], spans) -> list[dict]:
        n = len(indices)
        if indices[0] != self.processed or indices[-1] != self.processed + n - 1:
            raise ValueError(
                f"batch [{indices[0]}, {indices[-1]}] is not the contiguous "
                f"run starting at {self.processed}"
            )

        predictor = self._predictor  # single read: the retrainer swap point
        tracker = self.tracker
        verdicts = None
        rows = None
        t_classify = 0.0
        if predictor is not None and tracker is not None:
            t0 = time.perf_counter_ns()
            buf = self._rows
            rows = (
                buf[:n]
                if buf is not None and n <= buf.shape[0]
                else np.empty((n, len(tracker.feature_names)))
            )
            if self.cfg.columnar:
                # One vectorised catalog gather per feature column; state
                # advance included (bit-identical to the row loop below).
                tracker.features_into_batch(indices, rows)
            else:
                features_into = tracker.features_into
                observe = tracker.observe
                for row, i in enumerate(indices):
                    features_into(i, rows[row])
                    observe(i)
            t_feat = time.perf_counter_ns()
            # One vectorised call through the compiled tree's batch twin.
            verdicts = predictor.predict(rows)
            t_inf = time.perf_counter_ns()
            t_classify = (t_inf - t0) * 1e-9 / n
            self.classify_timing.add_repeated(t_classify, n)
            self._m_classify.observe_many(t_classify, n)
            self._m_stage_feature.observe((t_feat - t0) * 1e-9)
            self._m_stage_inference.observe((t_inf - t_feat) * 1e-9)
            if spans is not None:
                spans.add("feature_build", "node", t0, t_feat,
                          args={"rows": n})
                spans.add("batch_inference", "node", t_feat, t_inf)

        stats = self.stats
        hits0, bytes_hit0 = stats.hits, stats.bytes_hit
        written0, bytes_written0 = stats.files_written, stats.bytes_written
        denied0, evicted0 = stats.admissions_denied, stats.evictions
        requests0, bytes_req0 = stats.requests, stats.bytes_requested
        rectified0 = self.history.rectifications if self.history else 0

        cache = self.cache
        access = cache.access
        history = self.history
        tracer = self.tracer
        drift = self.drift
        stats_record = stats.record
        m_threshold = self.criteria.m_threshold if self.criteria else 0.0
        oid_list, size_list = self._oid_list, self._size_list
        denied_bytes = 0
        t_loop0 = time.perf_counter_ns()
        out = []
        for row, i in enumerate(indices):
            oid = oid_list[i]
            size = size_list[i]
            rectified = False
            if oid in cache:
                result = access(oid, size)
                denied = False
            else:
                if verdicts is None or verdicts[row] != ONE_TIME:
                    admit = True
                elif history.rectify(oid, i, m_threshold):
                    admit = True
                    rectified = True
                else:
                    history.record(oid, i)
                    admit = False
                result = access(oid, size, admit=admit)
                denied = not admit
            stats_record(size, result, denied)
            if denied:
                self.denied_mask[i] = True
                denied_bytes += size
            if drift is not None:
                drift.observe(i, oid, denied)
            if tracer is not None and tracer.should_sample(i):
                tracer.record(
                    {
                        "index": i,
                        "object_id": oid,
                        "trace_time": float(self._ts[i]),
                        "hit": result.hit,
                        "verdict": int(verdicts[row]) if verdicts is not None else None,
                        "denied": denied,
                        "rectified": rectified,
                        "features": rows[row].tolist() if rows is not None else None,
                        "t_classify": t_classify,
                    }
                )
            out.append(
                {
                    "ok": True,
                    "op": "GET",
                    "index": i,
                    "hit": result.hit,
                    "admitted": result.inserted,
                    "denied": denied,
                }
            )
        self.processed += n
        t_loop1 = time.perf_counter_ns()
        self._m_stage_cache.observe((t_loop1 - t_loop0) * 1e-9)
        if spans is not None:
            spans.add("cache_ops", "node", t_loop0, t_loop1,
                      args={"requests": n})

        # Registry counters advance by the batch's stats deltas: one inc per
        # metric per batch keeps the request loop unchanged while STATS and
        # /metrics can never drift apart.
        hits_d = stats.hits - hits0
        self._m_hits.inc(hits_d)
        self._m_misses.inc(stats.requests - requests0 - hits_d)
        hit_bytes_d = stats.bytes_hit - bytes_hit0
        self._m_hit_bytes.inc(hit_bytes_d)
        self._m_miss_bytes.inc(stats.bytes_requested - bytes_req0 - hit_bytes_d)
        self._m_writes.inc(stats.files_written - written0)
        self._m_write_bytes.inc(stats.bytes_written - bytes_written0)
        self._m_evictions.inc(stats.evictions - evicted0)
        self._m_denied.inc(stats.admissions_denied - denied0)
        if self.history is not None:
            self._m_rectified.inc(self.history.rectifications - rectified0)
        self._m_position.set(self.processed)

        # Write provenance (exact, batch-delta): on a single node every
        # insert is an admission accept by the model version that served
        # this batch — the model reference is read once per batch, so the
        # label can never straddle a swap.
        writes_d = stats.files_written - written0
        model_label = f"v{self.model_version}"
        if writes_d:
            self.ledger.record_write(
                "admission_accept",
                stats.bytes_written - bytes_written0,
                model=model_label,
                n=writes_d,
            )
        denied_d = stats.admissions_denied - denied0
        if denied_d:
            self.ledger.record_avoided(
                denied_bytes, model=model_label, n=denied_d
            )

        # Sampler-accounting gauges (cheap: once per batch).
        if tracer is not None:
            self._m_trace_seen.set(tracer.seen)
            self._m_trace_sampled.set(tracer.sampled)
            self._m_trace_dropped.set(tracer.dropped)
        timing = self.classify_timing
        self._m_classify_seen.set(timing.count)
        self._m_classify_retained.set(timing.retained)
        if spans is not None:
            self._m_spans_recorded.set(spans.recorded)
            self._m_spans_buffered.set(len(spans))
            self._m_spans_dropped.set(spans.dropped)
        return out


# --------------------------------------------------------------------------
# Serving layer
# --------------------------------------------------------------------------

_SHUTDOWN = object()

#: Socket read size for the frame loop — large enough that a backlogged
#: connection drains thousands of 16-byte frames per syscall.
_READ_CHUNK_BYTES = 256 * 1024


@dataclass(slots=True)
class _Request:
    index: int
    conn: "_Connection"
    t_enqueue: int  # perf_counter_ns at enqueue (queue-wait / latency base)
    binary: bool = False  # reply with a binary frame instead of JSON


#: Coalesce at most this many outbound bytes into one socket write before
#: draining — bounds per-wakeup latency without paying one drain per frame.
_WRITE_COALESCE_BYTES = 256 * 1024


class _Connection:
    """One client connection with an ordered, decoupled outbound path.

    Responses are encoded eagerly (to wire bytes) and queued; a dedicated
    task drains the queue so the node's writer loop never blocks on a slow
    client's socket, joining every immediately-available frame into a
    single ``write`` + ``drain`` — under pipelining this turns hundreds of
    per-frame syscall round trips per batch into a handful.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._outbound: asyncio.Queue = asyncio.Queue()
        self._task = asyncio.ensure_future(self._run())
        self._closed = False

    def send(self, message: dict) -> None:
        if not self._closed:
            self._outbound.put_nowait(encode_message(message))

    def send_bytes(self, frame: bytes) -> None:
        if not self._closed:
            self._outbound.put_nowait(frame)

    async def _run(self) -> None:
        writer = self._writer
        queue = self._outbound
        try:
            stopping = False
            while not stopping:
                frame = await queue.get()
                if frame is _SHUTDOWN:
                    break
                chunks = [frame]
                size = len(frame)
                while size < _WRITE_COALESCE_BYTES:
                    try:
                        frame = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if frame is _SHUTDOWN:
                        stopping = True
                        break
                    chunks.append(frame)
                    size += len(frame)
                writer.write(b"".join(chunks) if len(chunks) > 1 else chunks[0])
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def close(self) -> None:
        if not self._closed:
            self._outbound.put_nowait(_SHUTDOWN)
        with contextlib.suppress(asyncio.CancelledError):
            await self._task


class CacheNodeServer:
    """Asyncio TCP server around one :class:`CacheNode`.

    * bounded request queue (``queue_depth``) — a full queue suspends the
      connection handler, i.e. TCP backpressure;
    * single writer task — sequences GETs by trace index and applies them
      in micro-batches of at most ``cfg.max_batch``;
    * graceful drain — :meth:`shutdown` (also wired to SIGTERM/SIGINT by
      :func:`run_server`) stops accepting work, processes everything
      already accepted, answers the stragglers with an error, then closes;
    * observability side-car — with ``metrics_port`` an HTTP
      :class:`~repro.obs.exporter.MetricsExporter` serves ``/metrics``,
      ``/healthz`` and ``/statsz`` on its own port, and with
      ``retrain_on_drift`` a drift alarm from the node's monitor schedules
      an immediate retrain (the observable trigger replacing the blind
      schedule).
    """

    def __init__(
        self,
        node: CacheNode,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_depth: int = 1024,
        retrainer=None,
        metrics_host: str = "127.0.0.1",
        metrics_port: int | None = None,
        retrain_on_drift: bool = False,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.node = node
        self.host = host
        self.port = port
        self.retrainer = retrainer
        self.retrain_on_drift = retrain_on_drift
        self._queue: asyncio.Queue = asyncio.Queue(queue_depth)
        self._queued_requests = 0  # requests inside _queue (items may be lists)
        self._pending: dict[int, _Request] = {}
        self._connections: set[_Connection] = set()
        self._server: asyncio.AbstractServer | None = None
        self._writer_task: asyncio.Task | None = None
        self._retrain_task: asyncio.Task | None = None
        self._drift_retrain_task: asyncio.Task | None = None
        self._drift_alarms_seen = 0
        self._draining = False
        self._closed = asyncio.Event()
        self.started_at = 0.0
        self.service_latencies = Reservoir(
            capacity=node.cfg.timing_capacity, seed=node.cfg.seed + 1
        )
        reg = node.registry
        self._m_latency = reg.histogram(
            "repro_service_latency_seconds",
            "Enqueue-to-response time inside the server.",
            buckets=latency_buckets(),
        )
        self._m_queue = reg.gauge(
            "repro_queue_depth", "Requests queued or awaiting sequencing."
        )
        self._m_connections = reg.gauge(
            "repro_connections", "Open client connections."
        )
        # Serving-side children of the node's stage-histogram family.
        stage = reg.histogram(
            "repro_stage_seconds",
            "Request-lifecycle stage wall time (one observation per "
            "micro-batch; queue_wait counts every request at the batch "
            "mean).",
            ("stage",),
            buckets=latency_buckets(),
        )
        self._m_stage_queue = stage.labels(stage="queue_wait")
        self._m_stage_reply = stage.labels(stage="reply")
        res_seen = reg.gauge(
            "repro_reservoir_seen",
            "Observations offered to a bounded timing reservoir.",
            ("reservoir",),
        )
        res_kept = reg.gauge(
            "repro_reservoir_retained",
            "Samples currently retained by a bounded timing reservoir.",
            ("reservoir",),
        )
        self._m_latency_seen = res_seen.labels(reservoir="service_latency")
        self._m_latency_retained = res_kept.labels(reservoir="service_latency")
        self.exporter: MetricsExporter | None = None
        if metrics_port is not None:
            from repro.server.metrics import metrics_snapshot

            self.exporter = MetricsExporter(
                reg,
                host=metrics_host,
                port=metrics_port,
                statsz=lambda: metrics_snapshot(self.node, self),
                healthz=self._healthz,
            )

    def _healthz(self):
        body = {
            "status": "draining" if self._draining else "ok",
            "processed": self.node.processed,
            "trace_requests": self.node.trace.n_accesses,
            "uptime_seconds": (
                time.perf_counter() - self.started_at if self.started_at else 0.0
            ),
        }
        return (body, 503) if self._draining else body

    # -------------------------------------------------------------- control

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.perf_counter()
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        if self.retrainer is not None:
            self._retrain_task = asyncio.ensure_future(self.retrainer.run())
        if self.exporter is not None:
            await self.exporter.start()

    async def shutdown(self) -> None:
        """Drain in-flight requests, then stop.  Idempotent."""
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        logger.info("draining: %d request(s) in flight", self.queue_depth)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.put(_SHUTDOWN)
        if self._writer_task is not None:
            await self._writer_task
        for task in (self._retrain_task, self._drift_retrain_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        if self.exporter is not None:
            await self.exporter.stop()
        for conn in list(self._connections):
            await conn.close()
        self._closed.set()
        logger.info(
            "server closed after %d processed request(s)", self.node.processed
        )

    async def wait_closed(self) -> None:
        await self._closed.wait()

    @property
    def queue_depth(self) -> int:
        return self._queued_requests + len(self._pending)

    # ------------------------------------------------------------ sequencer

    async def _writer_loop(self) -> None:
        queue, pending, node = self._queue, self._pending, self.node
        stopping = False

        def absorb(item) -> None:
            # Queue items are single requests (JSON path) or whole lists
            # (one per decoded chunk on the binary path).
            nonlocal stopping
            if item is _SHUTDOWN:
                stopping = True
            elif type(item) is list:
                for req in item:
                    pending[req.index] = req
                self._queued_requests -= len(item)
            else:
                pending[item.index] = item
                self._queued_requests -= 1

        while True:
            if not stopping and node.processed not in pending:
                absorb(await queue.get())
            # Drain whatever else is already queued before batching, so one
            # inference call covers every currently-available request.
            while True:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                absorb(item)

            batch = self._take_batch()
            if batch:
                self._process(batch)
                # Yield so handlers/clients run between micro-batches.
                await asyncio.sleep(0)
                continue
            if stopping:
                # Nothing more can be sequenced: any leftovers are gapped
                # (their predecessors never arrived before the drain).
                for req in pending.values():
                    self._send_get_error(
                        req,
                        "server drained before preceding requests arrived",
                    )
                pending.clear()
                return

    def _take_batch(self) -> list[_Request]:
        pending = self._pending
        i = self.node.processed
        limit = self.node.cfg.max_batch
        batch: list[_Request] = []
        while len(batch) < limit:
            req = pending.pop(i, None)
            if req is None:
                break
            batch.append(req)
            i += 1
        return batch

    @staticmethod
    def _send_get_error(req: _Request, error: str) -> None:
        if req.binary:
            req.conn.send_bytes(pack_get_error(req.index, error))
        else:
            req.conn.send(error_response("GET", error, index=req.index))

    def _process(self, batch: list[_Request]) -> None:
        node = self.node
        spans = node.spans
        root = None
        t_dequeue = time.perf_counter_ns()
        if spans is not None and spans.enabled:
            # Root of the per-batch span tree, backdated to the earliest
            # enqueue so the queue_wait child nests inside it; the node's
            # process_batch span inherits the track via the contextvar.
            root = spans.span(
                "request_batch", "server",
                start_ns=min(req.t_enqueue for req in batch),
                n=len(batch), first=batch[0].index,
            ).__enter__()
            spans.add("queue_wait", "server", root.start_ns, t_dequeue)
        try:
            try:
                results = node.process_batch([req.index for req in batch])
            except Exception as exc:  # defensive: fail the batch, keep serving
                logger.exception("batch of %d request(s) failed", len(batch))
                for req in batch:
                    self._send_get_error(req, str(exc))
                return
            t_reply0 = time.perf_counter_ns()
            # Latency instruments amortise per micro-batch, like the
            # t_classify reservoir: each request contributes the batch's
            # mean enqueue-to-reply / queue-wait time, keeping counts and
            # sums exact while the reply loop pays one histogram/reservoir
            # update per batch instead of three per request.
            n = len(batch)
            total_enqueue = 0
            for req in batch:
                total_enqueue += req.t_enqueue
            mean_lat = (t_reply0 * n - total_enqueue) * 1e-9 / n
            self.service_latencies.add_repeated(mean_lat, n)
            self._m_latency.observe_many(mean_lat, n)
            self._m_stage_queue.observe_many(
                (t_dequeue * n - total_enqueue) * 1e-9 / n, n
            )
            # Binary frames for one connection coalesce into a single
            # buffer flushed once per micro-batch — one writer-queue put
            # per connection instead of per request.  A JSON response on a
            # connection with a pending buffer flushes the buffer first,
            # so mixed-protocol clients still see responses in order.
            bin_bufs: dict[_Connection, bytearray] = {}
            for req, res in zip(batch, results):
                conn = req.conn
                if req.binary:
                    buf = bin_bufs.get(conn)
                    if buf is None:
                        bin_bufs[conn] = buf = bytearray()
                    buf += pack_get_response(
                        req.index, res["hit"], res["admitted"], res["denied"]
                    )
                else:
                    pending_bin = bin_bufs.pop(conn, None)
                    if pending_bin is not None:
                        conn.send_bytes(bytes(pending_bin))
                    conn.send(res)
            for conn, buf in bin_bufs.items():
                conn.send_bytes(bytes(buf))
            t_reply1 = time.perf_counter_ns()
            self._m_stage_reply.observe((t_reply1 - t_reply0) * 1e-9)
            if root is not None:
                spans.add("reply", "server", t_reply0, t_reply1)
            self._m_latency_seen.set(self.service_latencies.count)
            self._m_latency_retained.set(self.service_latencies.retained)
            self._m_queue.set(self.queue_depth)
            self._maybe_retrain_on_drift()
        finally:
            if root is not None:
                root.__exit__(None, None, None)

    def _maybe_retrain_on_drift(self) -> None:
        """Schedule an immediate retrain when the drift alarm has fired."""
        drift = self.node.drift
        if (
            drift is None
            or not self.retrain_on_drift
            or self.retrainer is None
            or drift.alarms <= self._drift_alarms_seen
        ):
            return
        if self._drift_retrain_task is not None and not self._drift_retrain_task.done():
            return  # one retrain in flight absorbs any alarm burst
        self._drift_alarms_seen = drift.alarms
        logger.warning(
            "drift alarm -> scheduling retrain (window %s, accuracy %s)",
            *(drift.last_alarm if drift.last_alarm else ("?", "?")),
        )
        self._drift_retrain_task = asyncio.ensure_future(
            self.retrainer.retrain_now()
        )

    # ---------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        self._m_connections.inc()
        decoder = FrameDecoder()
        try:
            while True:
                # Chunked reads through the incremental decoder: one socket
                # read yields every pipelined frame it carried (JSON and
                # binary interleave freely on the same connection).
                data = await reader.read(_READ_CHUNK_BYTES)
                if not data:
                    if decoder.pending:
                        conn.send(
                            error_response("", "protocol error: EOF inside frame")
                        )
                    break
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    # Frames parsed ahead of the violation are still valid
                    # requests; serve them, then report and hang up.
                    for frame in exc.frames:
                        await self._dispatch_frame(frame, conn)
                    conn.send(error_response("", f"protocol error: {exc}"))
                    break
                await self._dispatch_frames(frames, conn)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(conn)
            self._m_connections.dec()
            await conn.close()

    async def _dispatch_frames(self, frames: list, conn: _Connection) -> None:
        """Dispatch one decoded chunk, batch-enqueueing binary GET runs.

        Consecutive binary GETs — the open-loop pipelining case, where one
        socket read carries thousands of 16-byte frames — validate
        together and enter the sequencer queue as a single list item: one
        ``put`` per chunk instead of per request.  Any other frame flushes
        the run first, so queue order still matches wire order.
        """
        batch: list[_Request] | None = None
        t_ns = time.perf_counter_ns()
        validate = self._validate_get
        # Validation state is loop-invariant between awaits (the event loop
        # is single-threaded), so hoist it and inline the happy path; any
        # check that fails falls back to _validate_get for the error reply.
        # Re-hoisted after every await — processed/draining advance there.
        node = self.node
        pending = self._pending
        expected_oid = node.expected_oid
        request = _Request
        n_accesses = node.trace.n_accesses
        processed = node.processed
        draining = self._draining
        for frame in frames:
            if type(frame) is not dict and frame[0] == BIN_GET:
                index = frame[1]
                oid = frame[2]
                if (
                    not draining
                    and processed <= index < n_accesses
                    and index not in pending
                    and (oid is None or oid == expected_oid(index))
                ):
                    req = request(index, conn, t_ns, True)
                else:
                    req = validate(index, oid, conn, binary=True, t_ns=t_ns)
                    if req is None:
                        continue
                if batch is None:
                    batch = [req]
                else:
                    batch.append(req)
                continue
            if batch is not None:
                self._queued_requests += len(batch)
                await self._queue.put(batch)
                batch = None
            await self._dispatch_frame(frame, conn)
            processed = node.processed
            draining = self._draining
        if batch is not None:
            self._queued_requests += len(batch)
            await self._queue.put(batch)

    async def _dispatch_frame(self, frame, conn: _Connection) -> None:
        if type(frame) is dict:
            await self._dispatch(frame, conn)
        elif frame[0] == BIN_GET:
            _, index, oid, _size = frame
            await self._enqueue_get(index, oid, conn, binary=True)
        else:  # a response op (BIN_GET_OK / BIN_GET_ERR) sent by a client
            conn.send_bytes(
                pack_get_error(frame[1], "unexpected binary response op")
            )

    async def _dispatch(self, message: dict, conn: _Connection) -> None:
        op = str(message.get("op", "")).upper()
        if op == "GET":
            await self._dispatch_get(message, conn)
        elif op == "STATS":
            from repro.server.metrics import metrics_snapshot

            conn.send(
                {"ok": True, "op": "STATS", "stats": metrics_snapshot(self.node, self)}
            )
        elif op == "PING":
            conn.send({"ok": True, "op": "PING"})
        elif op == "TRACE":
            self._dispatch_trace(message, conn)
        elif op == "SPANS":
            self._dispatch_spans(message, conn)
        elif op == "RESET":
            if self.queue_depth:
                conn.send(error_response("RESET", "requests still in flight"))
            else:
                self.node.reset()
                self.service_latencies.clear()
                self._drift_alarms_seen = 0
                conn.send({"ok": True, "op": "RESET"})
        elif op == "RELOAD":
            if self.retrainer is None:
                conn.send(error_response("RELOAD", "no retrainer configured"))
            else:
                info = await self.retrainer.retrain_now()
                conn.send({"ok": True, "op": "RELOAD", **info})
        else:
            conn.send(error_response(op, f"unknown op {op!r}"))

    def _dispatch_trace(self, message: dict, conn: _Connection) -> None:
        tracer = self.node.tracer
        if tracer is None:
            conn.send(error_response("TRACE", "decision tracing disabled"))
            return
        limit = message.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
        ):
            conn.send(
                error_response("TRACE", "limit must be a non-negative integer")
            )
            return
        seen, sampled, dropped = tracer.seen, tracer.sampled, tracer.dropped
        # One frame drains at most 10k events (bounded response size); an
        # omitted limit means "everything buffered" up to that cap.
        events = tracer.events(
            limit=10_000 if limit is None else min(limit, 10_000),
            clear=bool(message.get("clear")),
        )
        conn.send(
            {
                "ok": True,
                "op": "TRACE",
                "events": events,
                "seen": seen,
                "sampled": sampled,
                "dropped": dropped,
                "sample_rate": tracer.sample_rate,
            }
        )

    def _dispatch_spans(self, message: dict, conn: _Connection) -> None:
        spans = self.node.spans
        if spans is None:
            conn.send(error_response("SPANS", "span tracing disabled"))
            return
        limit = message.get("limit")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
        ):
            conn.send(
                error_response("SPANS", "limit must be a non-negative integer")
            )
            return
        recorded, dropped = spans.recorded, spans.dropped
        # Same bounded-drain contract as TRACE: at most 10k spans a frame.
        events = spans.events(
            limit=10_000 if limit is None else min(limit, 10_000),
            clear=bool(message.get("clear")),
        )
        conn.send(
            {
                "ok": True,
                "op": "SPANS",
                "spans": events,
                "recorded": recorded,
                "dropped": dropped,
                "capacity": spans.capacity,
            }
        )

    async def _dispatch_get(self, message: dict, conn: _Connection) -> None:
        index = message.get("index")
        if not isinstance(index, int) or isinstance(index, bool):
            conn.send(error_response("GET", "GET requires an integer index"))
            return
        await self._enqueue_get(index, message.get("oid"), conn, binary=False)

    def _validate_get(
        self, index: int, oid, conn: _Connection, *, binary: bool, t_ns: int
    ) -> _Request | None:
        """Validate one GET (JSON or binary); error the client on failure."""
        node = self.node
        if self._draining:
            error = "server is draining"
        elif not 0 <= index < node.trace.n_accesses:
            error = "index out of range"
        elif index < node.processed or index in self._pending:
            error = "index already served"
        elif oid is not None and int(oid) != node.expected_oid(index):
            error = "oid does not match the server's trace at this index"
        else:
            return _Request(index, conn, t_ns, binary)
        if binary:
            conn.send_bytes(pack_get_error(index, error))
        else:
            conn.send(error_response("GET", error, index=index))
        return None

    async def _enqueue_get(
        self, index: int, oid, conn: _Connection, *, binary: bool
    ) -> None:
        """Validate one GET and hand it to the sequencer."""
        req = self._validate_get(
            index, oid, conn, binary=binary, t_ns=time.perf_counter_ns()
        )
        if req is not None:
            self._queued_requests += 1
            await self._queue.put(req)


async def run_server(
    node: CacheNode,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    queue_depth: int = 1024,
    retrainer=None,
    metrics_host: str = "127.0.0.1",
    metrics_port: int | None = None,
    retrain_on_drift: bool = False,
    ready: asyncio.Event | None = None,
) -> CacheNodeServer:
    """Start a node server, wire SIGINT/SIGTERM to a graceful drain, and
    serve until shut down.  Returns the (closed) server for inspection."""
    server = CacheNodeServer(
        node,
        host,
        port,
        queue_depth=queue_depth,
        retrainer=retrainer,
        metrics_host=metrics_host,
        metrics_port=metrics_port,
        retrain_on_drift=retrain_on_drift,
    )
    await server.start()
    loop = asyncio.get_running_loop()
    handled: list[signal.Signals] = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.shutdown())
            )
            handled.append(sig)
        except (NotImplementedError, RuntimeError):  # non-unix loops
            pass
    logger.info(
        "repro cache node listening on %s:%d (%s trace requests, "
        "classifier=%s%s)",
        server.host,
        server.port,
        format(node.trace.n_accesses, ","),
        "on" if node.model is not None else "off",
        (
            f", metrics on {server.exporter.host}:{server.exporter.port}"
            if server.exporter is not None
            else ""
        ),
        extra={"port": server.port, "trace_requests": node.trace.n_accesses},
    )
    if ready is not None:
        ready.set()
    try:
        await server.wait_closed()
    finally:
        for sig in handled:
            loop.remove_signal_handler(sig)
    return server
