"""The asyncio cache-node service: a runnable single-server deployment.

Two layers, deliberately separated:

* :class:`CacheNode` — a *synchronous* state machine owning all cache
  state (DRAM+SSD hierarchy, online feature tracker, classifier, history
  table, statistics).  Its only mutation entry point is
  :meth:`CacheNode.process_batch`, which replays a contiguous run of
  trace positions exactly as :func:`repro.cache.simulator.simulate`
  would — so a served replay is bit-identical to the offline simulation
  (:func:`replay_offline` builds the reference stack; the equivalence is
  tested).
* :class:`CacheNodeServer` — the asyncio TCP front end.  Connection
  handlers parse frames and enqueue requests into one bounded queue
  (backpressure: a full queue suspends the handler, which stops reading
  its socket); a **single writer task** drains the queue, sequences
  requests by trace index, and applies them in micro-batches.  Because
  every cache mutation flows through that one task, no locking is needed
  and concurrent clients cannot interleave partial updates.

Micro-batching: classifier features depend only on the *request stream*
(never on cache state), so the writer computes feature rows for a whole
batch, runs **one** vectorised ``model.predict`` call, and only then
applies verdicts + history-table rectification + cache accesses in strict
trace order.  Admission semantics are unchanged — the verdict for a
request that turns out to hit is simply discarded, exactly as the offline
path never computes it.

The model reference is read **once per batch**, so
:meth:`CacheNode.install_model` (the retrainer's atomic swap) can never
split a batch across two models.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.base import CachePolicy, CacheStats
from repro.cache.hierarchy import HierarchicalCache
from repro.cache.simulator import SimulationResult, make_policy, simulate
from repro.core.admission import AlwaysAdmit
from repro.core.criteria import Criteria, solve_criteria
from repro.core.features import PAPER_FEATURE_NAMES, extract_features
from repro.core.history_table import HistoryTable
from repro.core.labeling import ONE_TIME, one_time_labels, reaccess_distances
from repro.core.online import OnlineClassifierAdmission, OnlineFeatureTracker
from repro.ml.cost_sensitive import CostMatrix, CostSensitiveClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.server.protocol import (
    ProtocolError,
    encode_message,
    error_response,
    read_message,
)
from repro.trace.records import Trace

__all__ = [
    "NodeConfig",
    "CacheNode",
    "CacheNodeServer",
    "build_cache",
    "solve_node_criteria",
    "train_seed_model",
    "replay_offline",
    "run_server",
]


@dataclass(frozen=True)
class NodeConfig:
    """Everything needed to build one cache node deterministically.

    The same config drives both the live server (:class:`CacheNode`) and
    the offline reference run (:func:`replay_offline`); determinism of the
    seed model (``seed``) is what makes served results reproducible.
    """

    policy: str = "lru"
    capacity_fraction: float | None = 0.01
    capacity_bytes: int | None = None
    dram_fraction: float = 0.05     # 0 disables the DRAM tier
    classifier: bool = True
    cost_v: float = 2.0
    train_seconds: float = 86400.0  # seed model trains on this trace prefix
    max_splits: int = 30
    min_train_samples: int = 50
    seed: int = 0
    max_batch: int = 256

    def resolve_capacity(self, trace: Trace) -> int:
        if (self.capacity_fraction is None) == (self.capacity_bytes is None):
            raise ValueError(
                "give exactly one of capacity_fraction / capacity_bytes"
            )
        if self.capacity_bytes is not None:
            if self.capacity_bytes <= 0:
                raise ValueError("capacity_bytes must be positive")
            return int(self.capacity_bytes)
        if self.capacity_fraction <= 0:
            raise ValueError("capacity_fraction must be positive")
        return max(1, int(self.capacity_fraction * trace.footprint_bytes))


def build_cache(trace: Trace, cfg: NodeConfig) -> CachePolicy:
    """The node's cache stack: SSD-tier policy, optionally DRAM-fronted."""
    ssd = make_policy(cfg.policy, cfg.resolve_capacity(trace), trace)
    if cfg.dram_fraction <= 0:
        return ssd
    return HierarchicalCache.with_lru_dram(ssd, dram_fraction=cfg.dram_fraction)


def solve_node_criteria(trace: Trace, cfg: NodeConfig) -> Criteria:
    """The §4.3 criterion ``M`` for this node's capacity."""
    distances = reaccess_distances(trace.object_ids)
    return solve_criteria(
        distances, cfg.resolve_capacity(trace), trace.mean_object_size()
    )


def history_capacity(criteria: Criteria) -> int:
    """§4.4.2 sizing with a small floor for tiny test workloads."""
    return max(
        8,
        HistoryTable.paper_capacity(
            criteria.m_threshold, criteria.hit_rate, criteria.one_time_share
        ),
    )


def train_seed_model(trace: Trace, cfg: NodeConfig, criteria: Criteria):
    """Bootstrap classifier: cost-sensitive CART on the first trace day.

    Mirrors how a deployment starts — a model trained offline on
    yesterday's log before the node goes live (the retrainer then takes
    over the §4.4.3 daily refresh).  Returns ``None`` when the prefix is
    too small or single-class; the node then admits everything.
    """
    labels = one_time_labels(trace.object_ids, criteria.m_threshold)
    mask = trace.timestamps < cfg.train_seconds
    if int(mask.sum()) < cfg.min_train_samples:
        return None
    y = labels[mask]
    if np.unique(y).shape[0] < 2:
        return None
    fm = extract_features(trace).select(PAPER_FEATURE_NAMES)
    model = CostSensitiveClassifier(
        DecisionTreeClassifier(max_splits=cfg.max_splits, rng=cfg.seed),
        CostMatrix(fn_cost=1.0, fp_cost=cfg.cost_v),
    )
    return model.fit(fm.X[mask], y)


def replay_offline(trace: Trace, cfg: NodeConfig, *, model=None) -> SimulationResult:
    """The offline reference: ``simulate()`` over the identical stack.

    Builds the same cache, criterion, seed model (unless one is passed in)
    and history table as :class:`CacheNode` and replays through the
    simulator's per-request admission path.  A server that replays the
    same trace (without retraining) must report the same hit/write
    counters — the acceptance test for the serving layer.
    """
    cache = build_cache(trace, cfg)
    if not cfg.classifier:
        return simulate(
            trace, cache, admission=AlwaysAdmit(), policy_name=cfg.policy
        )
    criteria = solve_node_criteria(trace, cfg)
    if model is None:
        model = train_seed_model(trace, cfg, criteria)
    if model is None:
        return simulate(
            trace, cache, admission=AlwaysAdmit(), policy_name=cfg.policy
        )
    admission = OnlineClassifierAdmission(
        model,
        OnlineFeatureTracker(trace),
        criteria.m_threshold,
        HistoryTable(history_capacity(criteria)),
    )
    return simulate(trace, cache, admission=admission, policy_name=cfg.policy)


class CacheNode:
    """Single-writer cache-node state machine over a loaded trace.

    All mutation goes through :meth:`process_batch` with a *contiguous*
    ascending run of trace positions starting at :attr:`processed` — the
    serving layer's sequencer guarantees that even when concurrent
    connections deliver requests out of order.
    """

    def __init__(self, trace: Trace, cfg: NodeConfig | None = None):
        self.trace = trace
        self.cfg = cfg if cfg is not None else NodeConfig()
        self._oid_list = trace.object_ids.tolist()
        self._size_list = trace.catalog["size"][trace.object_ids].tolist()
        self._ts = trace.timestamps

        self.criteria: Criteria | None = None
        self.model = None
        self.model_version = 0
        self.tracker: OnlineFeatureTracker | None = None
        self.history: HistoryTable | None = None
        if self.cfg.classifier:
            self.criteria = solve_node_criteria(trace, self.cfg)
            self.model = train_seed_model(trace, self.cfg, self.criteria)
            if self.model is not None:
                self.model_version = 1
                self.tracker = OnlineFeatureTracker(trace)
                self.history = HistoryTable(history_capacity(self.criteria))

        self.cache = build_cache(trace, self.cfg)
        self.stats = CacheStats()
        self.processed = 0
        self.denied_mask = np.zeros(trace.n_accesses, dtype=bool)
        # Micro-batched t_classify telemetry: one (size, seconds) pair per
        # inference batch; per-decision times are the amortised quotients.
        self._classify_batch_sizes: list[int] = []
        self._classify_batch_seconds: list[float] = []

    # ------------------------------------------------------------ telemetry

    @property
    def trace_clock(self) -> float:
        """Trace time of the last processed request (0 before the first)."""
        return float(self._ts[self.processed - 1]) if self.processed else 0.0

    @property
    def rectified_admits(self) -> int:
        return self.history.rectifications if self.history is not None else 0

    def expected_oid(self, index: int) -> int:
        """The object id the loaded trace holds at ``index`` (validation)."""
        return self._oid_list[index]

    def classify_times(self) -> np.ndarray:
        """Amortised per-decision classification seconds, one per request.

        Each micro-batch contributes ``size`` equal entries of
        ``seconds / size`` — the per-decision cost actually paid under
        batched inference (the served analogue of
        :attr:`repro.core.online.OnlineClassifierAdmission.decision_times`).
        """
        if not self._classify_batch_sizes:
            return np.empty(0)
        sizes = np.asarray(self._classify_batch_sizes)
        secs = np.asarray(self._classify_batch_seconds)
        return np.repeat(secs / sizes, sizes)

    # ------------------------------------------------------------- mutation

    def install_model(self, model) -> int:
        """Atomically swap the admission classifier; returns the version.

        A plain attribute assignment: the processing loop binds the model
        reference once per batch, so a swap takes effect at the next batch
        boundary and can never split a batch.
        """
        self.model = model
        self.model_version += 1
        return self.model_version

    def reset(self) -> None:
        """Fresh cache/statistics state; the trained model is kept."""
        self.cache = build_cache(self.trace, self.cfg)
        self.stats = CacheStats()
        self.processed = 0
        self.denied_mask[:] = False
        self._classify_batch_sizes.clear()
        self._classify_batch_seconds.clear()
        if self.tracker is not None:
            self.tracker.reset()
        if self.history is not None:
            self.history.clear()

    def process_batch(self, indices: list[int]) -> list[dict]:
        """Apply a contiguous run of trace requests; returns GET responses.

        Semantics per request are identical to the simulator loop with
        :class:`~repro.core.online.OnlineClassifierAdmission`; only the
        *timing* of classifier inference differs (one vectorised call per
        batch instead of one per miss).
        """
        n = len(indices)
        if n == 0:
            return []
        if indices[0] != self.processed or indices[-1] != self.processed + n - 1:
            raise ValueError(
                f"batch [{indices[0]}, {indices[-1]}] is not the contiguous "
                f"run starting at {self.processed}"
            )

        model = self.model  # single read: the retrainer swap point
        tracker = self.tracker
        verdicts = None
        if model is not None and tracker is not None:
            t0 = time.perf_counter()
            rows = np.empty((n, len(tracker.feature_names)))
            for row, i in enumerate(indices):
                rows[row] = tracker.features(i)
                tracker.observe(i)
            verdicts = model.predict(rows)
            self._classify_batch_seconds.append(time.perf_counter() - t0)
            self._classify_batch_sizes.append(n)

        cache = self.cache
        access = cache.access
        history = self.history
        stats_record = self.stats.record
        m_threshold = self.criteria.m_threshold if self.criteria else 0.0
        oid_list, size_list = self._oid_list, self._size_list
        out = []
        for row, i in enumerate(indices):
            oid = oid_list[i]
            size = size_list[i]
            if oid in cache:
                result = access(oid, size)
                denied = False
            else:
                if verdicts is None or verdicts[row] != ONE_TIME:
                    admit = True
                elif history.rectify(oid, i, m_threshold):
                    admit = True
                else:
                    history.record(oid, i)
                    admit = False
                result = access(oid, size, admit=admit)
                denied = not admit
            stats_record(size, result, denied)
            if denied:
                self.denied_mask[i] = True
            out.append(
                {
                    "ok": True,
                    "op": "GET",
                    "index": i,
                    "hit": result.hit,
                    "admitted": result.inserted,
                    "denied": denied,
                }
            )
        self.processed += n
        return out


# --------------------------------------------------------------------------
# Serving layer
# --------------------------------------------------------------------------

_SHUTDOWN = object()

#: Service-latency samples retained for the STATS percentiles.
_LATENCY_WINDOW = 200_000


@dataclass
class _Request:
    index: int
    conn: "_Connection"
    t_enqueue: float


class _Connection:
    """One client connection with an ordered, decoupled outbound path.

    Responses are queued and written by a dedicated task so the node's
    writer loop never blocks on a slow client's socket.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._outbound: asyncio.Queue = asyncio.Queue()
        self._task = asyncio.ensure_future(self._run())
        self._closed = False

    def send(self, message: dict) -> None:
        if not self._closed:
            self._outbound.put_nowait(message)

    async def _run(self) -> None:
        writer = self._writer
        try:
            while True:
                message = await self._outbound.get()
                if message is _SHUTDOWN:
                    break
                writer.write(encode_message(message))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._closed = True
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def close(self) -> None:
        if not self._closed:
            self._outbound.put_nowait(_SHUTDOWN)
        with contextlib.suppress(asyncio.CancelledError):
            await self._task


class CacheNodeServer:
    """Asyncio TCP server around one :class:`CacheNode`.

    * bounded request queue (``queue_depth``) — a full queue suspends the
      connection handler, i.e. TCP backpressure;
    * single writer task — sequences GETs by trace index and applies them
      in micro-batches of at most ``cfg.max_batch``;
    * graceful drain — :meth:`shutdown` (also wired to SIGTERM/SIGINT by
      :func:`run_server`) stops accepting work, processes everything
      already accepted, answers the stragglers with an error, then closes.
    """

    def __init__(
        self,
        node: CacheNode,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_depth: int = 1024,
        retrainer=None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.node = node
        self.host = host
        self.port = port
        self.retrainer = retrainer
        self._queue: asyncio.Queue = asyncio.Queue(queue_depth)
        self._pending: dict[int, _Request] = {}
        self._connections: set[_Connection] = set()
        self._server: asyncio.AbstractServer | None = None
        self._writer_task: asyncio.Task | None = None
        self._retrain_task: asyncio.Task | None = None
        self._draining = False
        self._closed = asyncio.Event()
        self.started_at = 0.0
        self.service_latencies: list[float] = []

    # -------------------------------------------------------------- control

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.perf_counter()
        self._writer_task = asyncio.ensure_future(self._writer_loop())
        if self.retrainer is not None:
            self._retrain_task = asyncio.ensure_future(self.retrainer.run())

    async def shutdown(self) -> None:
        """Drain in-flight requests, then stop.  Idempotent."""
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.put(_SHUTDOWN)
        if self._writer_task is not None:
            await self._writer_task
        if self._retrain_task is not None:
            self._retrain_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._retrain_task
        for conn in list(self._connections):
            await conn.close()
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize() + len(self._pending)

    # ------------------------------------------------------------ sequencer

    async def _writer_loop(self) -> None:
        queue, pending, node = self._queue, self._pending, self.node
        stopping = False
        while True:
            if not stopping and node.processed not in pending:
                item = await queue.get()
                if item is _SHUTDOWN:
                    stopping = True
                else:
                    pending[item.index] = item
            # Drain whatever else is already queued before batching, so one
            # inference call covers every currently-available request.
            while True:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _SHUTDOWN:
                    stopping = True
                else:
                    pending[item.index] = item

            batch = self._take_batch()
            if batch:
                self._process(batch)
                # Yield so handlers/clients run between micro-batches.
                await asyncio.sleep(0)
                continue
            if stopping:
                # Nothing more can be sequenced: any leftovers are gapped
                # (their predecessors never arrived before the drain).
                for req in pending.values():
                    req.conn.send(
                        error_response(
                            "GET",
                            "server drained before preceding requests arrived",
                            index=req.index,
                        )
                    )
                pending.clear()
                return

    def _take_batch(self) -> list[_Request]:
        pending = self._pending
        i = self.node.processed
        limit = self.node.cfg.max_batch
        batch: list[_Request] = []
        while len(batch) < limit:
            req = pending.pop(i, None)
            if req is None:
                break
            batch.append(req)
            i += 1
        return batch

    def _process(self, batch: list[_Request]) -> None:
        try:
            results = self.node.process_batch([req.index for req in batch])
        except Exception as exc:  # defensive: fail the batch, keep serving
            for req in batch:
                req.conn.send(error_response("GET", str(exc), index=req.index))
            return
        now = time.perf_counter()
        latencies = self.service_latencies
        if len(latencies) >= _LATENCY_WINDOW:
            del latencies[: _LATENCY_WINDOW // 2]
        for req, res in zip(batch, results):
            latencies.append(now - req.t_enqueue)
            req.conn.send(res)

    # ---------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    conn.send(error_response("", f"protocol error: {exc}"))
                    break
                if message is None:
                    break
                await self._dispatch(message, conn)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(conn)
            await conn.close()

    async def _dispatch(self, message: dict, conn: _Connection) -> None:
        op = str(message.get("op", "")).upper()
        if op == "GET":
            await self._dispatch_get(message, conn)
        elif op == "STATS":
            from repro.server.metrics import metrics_snapshot

            conn.send(
                {"ok": True, "op": "STATS", "stats": metrics_snapshot(self.node, self)}
            )
        elif op == "PING":
            conn.send({"ok": True, "op": "PING"})
        elif op == "RESET":
            if self.queue_depth:
                conn.send(error_response("RESET", "requests still in flight"))
            else:
                self.node.reset()
                self.service_latencies.clear()
                conn.send({"ok": True, "op": "RESET"})
        elif op == "RELOAD":
            if self.retrainer is None:
                conn.send(error_response("RELOAD", "no retrainer configured"))
            else:
                info = await self.retrainer.retrain_now()
                conn.send({"ok": True, "op": "RELOAD", **info})
        else:
            conn.send(error_response(op, f"unknown op {op!r}"))

    async def _dispatch_get(self, message: dict, conn: _Connection) -> None:
        index = message.get("index")
        if not isinstance(index, int) or isinstance(index, bool):
            conn.send(error_response("GET", "GET requires an integer index"))
            return
        if self._draining:
            conn.send(error_response("GET", "server is draining", index=index))
            return
        node = self.node
        if not 0 <= index < node.trace.n_accesses:
            conn.send(error_response("GET", "index out of range", index=index))
            return
        if index < node.processed or index in self._pending:
            conn.send(
                error_response("GET", "index already served", index=index)
            )
            return
        oid = message.get("oid")
        if oid is not None and int(oid) != node.expected_oid(index):
            conn.send(
                error_response(
                    "GET",
                    "oid does not match the server's trace at this index",
                    index=index,
                )
            )
            return
        await self._queue.put(_Request(index, conn, time.perf_counter()))


async def run_server(
    node: CacheNode,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    queue_depth: int = 1024,
    retrainer=None,
    ready: asyncio.Event | None = None,
) -> CacheNodeServer:
    """Start a node server, wire SIGINT/SIGTERM to a graceful drain, and
    serve until shut down.  Returns the (closed) server for inspection."""
    server = CacheNodeServer(
        node, host, port, queue_depth=queue_depth, retrainer=retrainer
    )
    await server.start()
    loop = asyncio.get_running_loop()
    handled: list[signal.Signals] = []
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(server.shutdown())
            )
            handled.append(sig)
        except (NotImplementedError, RuntimeError):  # non-unix loops
            pass
    print(
        f"repro cache node listening on {server.host}:{server.port} "
        f"({node.trace.n_accesses:,} trace requests, "
        f"classifier={'on' if node.model is not None else 'off'})",
        flush=True,
    )
    if ready is not None:
        ready.set()
    try:
        await server.wait_closed()
    finally:
        for sig in handled:
            loop.remove_signal_handler(sig)
    return server
