"""The serving runtime: an asyncio cache node plus its load generator.

Turns the batch-simulation stack into a runnable service:

* :mod:`repro.server.protocol`  — length-prefixed JSON wire format
  (GET / STATS / RELOAD / RESET / TRACE / PING).
* :mod:`repro.server.node`      — :class:`CacheNode` (single-writer cache
  state machine, micro-batched classifier inference) and
  :class:`CacheNodeServer` (asyncio TCP front end with a bounded request
  queue, trace-order sequencing and graceful drain);
  :func:`replay_offline` builds the bit-identical simulator reference.
* :mod:`repro.server.retrainer` — the §4.4.3 daily retraining loop as a
  background task with matured labels and atomic model swap.
* :mod:`repro.server.metrics`   — STATS snapshots and their table form.
* :mod:`repro.server.loadgen`   — open-loop trace-replay client reporting
  achieved throughput and latency percentiles.

Observability (metrics registry, HTTP exporter, decision tracing, drift
monitoring, structured logging) lives in :mod:`repro.obs` and is threaded
through every piece above; ``repro serve --metrics-port`` exposes it.

CLI: ``repro serve`` / ``repro loadgen`` / ``repro trace-dump`` /
``repro stats --watch``.
"""

from repro.server.loadgen import (
    LoadgenConfig,
    LoadgenResult,
    fetch_stats,
    replay,
    run_loadgen,
)
from repro.server.metrics import (
    admission_timing,
    format_metrics,
    metrics_snapshot,
    timing_stats,
)
from repro.server.node import (
    CacheNode,
    CacheNodeServer,
    NodeConfig,
    build_cache,
    replay_offline,
    run_server,
    solve_node_criteria,
    train_seed_model,
)
from repro.server.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    read_message,
    write_message,
)
from repro.server.retrainer import Retrainer, RetrainerConfig

__all__ = [
    "LoadgenConfig",
    "LoadgenResult",
    "fetch_stats",
    "replay",
    "run_loadgen",
    "admission_timing",
    "format_metrics",
    "metrics_snapshot",
    "timing_stats",
    "CacheNode",
    "CacheNodeServer",
    "NodeConfig",
    "build_cache",
    "replay_offline",
    "run_server",
    "solve_node_criteria",
    "train_seed_model",
    "ProtocolError",
    "decode_message",
    "encode_message",
    "read_message",
    "write_message",
    "Retrainer",
    "RetrainerConfig",
]
