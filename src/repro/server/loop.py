"""Optional uvloop acceleration for the serving/loadgen event loops.

uvloop (a libuv-backed drop-in replacement for the stdlib asyncio loop)
typically buys 2–4× on socket-heavy workloads, but it is a compiled
third-party wheel the runtime may not have.  The serving stack therefore
treats it as a pure optimisation: :func:`install_uvloop` swaps the event
loop policy when the import succeeds and reports what happened, and every
caller (``repro serve``, ``repro loadgen``, the throughput bench) falls
back to stdlib asyncio with identical semantics when it does not.

The CI matrix runs the server suite and throughput smoke both with and
without uvloop installed, so both sides of the fallback stay exercised.
"""

from __future__ import annotations

import asyncio

__all__ = ["install_uvloop", "reset_loop_policy", "uvloop_available", "loop_label"]


def uvloop_available() -> bool:
    """Whether the uvloop wheel is importable in this environment."""
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def install_uvloop(enable: bool = True) -> bool:
    """Install uvloop's event-loop policy when possible; report success.

    ``enable=False`` (the ``--no-uvloop`` escape hatch) and a missing
    wheel both leave the stdlib policy untouched and return ``False`` —
    the caller's ``asyncio.run`` then behaves exactly as before.
    """
    if not enable:
        return False
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def reset_loop_policy() -> None:
    """Restore the default asyncio policy (undo :func:`install_uvloop`).

    Used by the throughput bench to measure uvloop on/off in one process;
    the policy only affects loops created afterwards.
    """
    asyncio.set_event_loop_policy(None)


def loop_label(installed: bool) -> str:
    """Human-readable loop name for logs and bench reports."""
    return "uvloop" if installed else "asyncio"
