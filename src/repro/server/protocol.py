"""Length-prefixed JSON wire protocol for the cache-node service.

Framing is a 4-byte big-endian unsigned length followed by a UTF-8 JSON
object — the simplest self-delimiting format that supports pipelining
(many requests in flight per connection) and stays debuggable with
``nc``/``xxd``.  A production node would speak a binary protocol; JSON
keeps the reproduction inspectable without changing the system's shape.

Operations (client → server)
----------------------------
``GET``     ``{"op": "GET", "index": i, "oid": ..., "size": ...}`` —
            one replayed trace request.  ``index`` is the trace position
            (the server sequences requests by it), ``oid``/``size`` are
            validated against the server's catalog.
``STATS``   metrics snapshot (:mod:`repro.server.metrics`).
``RELOAD``  force an immediate classifier retrain + atomic model swap.
``RESET``   clear cache/statistics state and rewind the replay cursor.
``TRACE``   drain sampled decision-trace events (``{"op": "TRACE",
            "limit": n, "clear": bool}`` — both fields optional); errors
            if the node was started without tracing.
``SPANS``   drain the span tracer's ring buffer (``{"op": "SPANS",
            "limit": n, "clear": bool}``); errors if the node was
            started without span tracing (``repro serve --spans``).
``PING``    liveness check.

Every response carries ``"ok"`` (bool) and echoes ``"op"``; GET responses
echo ``"index"`` so pipelined responses can be correlated out of order.
Errors are in-band: ``{"ok": false, "op": ..., "error": "..."}``.

Binary protocol (v2)
--------------------
The GET hot path additionally speaks a compact binary framing that
coexists with JSON *on the same connection*: a JSON frame's 4-byte
big-endian length always starts with byte ``0x00`` (``MAX_MESSAGE_BYTES``
is far below 2^24), so the first byte of every frame discriminates the
two formats.  A binary frame is::

    magic  u8   BIN_MAGIC (0xB2)
    op     u8   BIN_GET / BIN_GET_OK / BIN_GET_ERR
    length u16  payload bytes (big-endian)
    payload     length-prefixed struct, op-specific

``BIN_GET`` carries ``index/oid/size`` as three ``u32`` (``oid`` may be
``BIN_NO_OID`` to skip catalog validation); ``BIN_GET_OK`` echoes the
``u32`` index — the pipelining correlation key, exactly like the JSON
``"index"`` echo — plus one flags byte (hit / admitted / denied);
``BIN_GET_ERR`` echoes the index followed by UTF-8 error text.  Control
verbs (STATS, RESET, ...) have no binary form: they stay JSON frames,
interleaved freely with binary GETs.

:class:`FrameDecoder` is the incremental parser both the server and the
load generator use: chunks read off the socket are fed into one reused
buffer and parsed into as many complete frames as are available, so the
steady state costs one ``struct.unpack_from`` per binary frame instead of
two ``readexactly`` round trips through the stream machinery.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np

__all__ = [
    "MAX_MESSAGE_BYTES",
    "OPS",
    "BIN_MAGIC",
    "BIN_GET",
    "BIN_GET_OK",
    "BIN_GET_ERR",
    "BIN_NO_OID",
    "ProtocolError",
    "FrameDecoder",
    "encode_message",
    "decode_message",
    "read_message",
    "write_message",
    "error_response",
    "pack_get_request",
    "pack_get_response",
    "pack_get_error",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame — a STATS snapshot is a few KB; anything near
#: this limit indicates a corrupt or hostile frame, not a real message.
MAX_MESSAGE_BYTES = 4 * 2**20

OPS = ("GET", "STATS", "RELOAD", "RESET", "TRACE", "SPANS", "PING")

#: First byte of every binary frame.  JSON frames always start 0x00 (their
#: big-endian length is capped well below 2^24), so one byte discriminates.
BIN_MAGIC = 0xB2

BIN_GET = 0x01      # client → server: index u32, oid u32, size u32
BIN_GET_OK = 0x02   # server → client: index u32, flags u8
BIN_GET_ERR = 0x03  # server → client: index u32, UTF-8 error text

#: ``oid`` sentinel in a BIN_GET meaning "skip catalog validation" (the
#: binary analogue of omitting ``"oid"`` from a JSON GET).
BIN_NO_OID = 0xFFFFFFFF

# Response flag bits (BIN_GET_OK).
FLAG_HIT = 0x01
FLAG_ADMITTED = 0x02
FLAG_DENIED = 0x04

_BIN_HEADER = struct.Struct(">BBH")
_BIN_GET_BODY = struct.Struct(">III")
_BIN_GET_OK_BODY = struct.Struct(">IB")
_BIN_INDEX = struct.Struct(">I")
# Whole-frame structs so the hot path packs header+payload in one call.
_FRAME_GET = struct.Struct(">BBHIII")
_FRAME_GET_OK = struct.Struct(">BBHIB")

# Whole-frame numpy records mirroring the structs above: the decoder
# validates a homogeneous run of fixed-size frames with three vectorised
# column compares, then tuples it in one C pass via ``iter_unpack``.
_RUN_GET_DTYPE = np.dtype(
    [
        ("magic", "u1"),
        ("op", "u1"),
        ("length", ">u2"),
        ("index", ">u4"),
        ("oid", ">u4"),
        ("size", ">u4"),
    ]
)
_RUN_GET_OK_DTYPE = np.dtype(
    [
        ("magic", "u1"),
        ("op", "u1"),
        ("length", ">u2"),
        ("index", ">u4"),
        ("flags", "u1"),
    ]
)
#: Engage the vectorised run parser only when a read carried at least this
#: many complete frames of one kind — below it the per-frame loop wins.
_RUN_MIN_FRAMES = 16


class ProtocolError(ValueError):
    """A frame that violates the wire format (length, JSON, or shape).

    ``frames`` carries any frames that were completely parsed from the
    same buffer *before* the violation, so a server can still serve them
    before closing the connection — matching the frame-at-a-time JSON
    reader, where valid frames ahead of the garbage were always handled.
    """

    def __init__(self, message: str, *, frames=()):
        super().__init__(message)
        self.frames = list(frames)


def encode_message(message: dict) -> bytes:
    """Serialise one message to its framed wire form."""
    if not isinstance(message, dict):
        raise ProtocolError("message must be a dict")
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(payload)} bytes exceeds limit")
    return _HEADER.pack(len(payload)) + payload


def decode_message(payload: bytes) -> dict:
    """Parse one frame *body* (header already stripped)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must decode to a JSON object")
    return message


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one framed message; ``None`` on clean EOF at a frame boundary.

    EOF in the *middle* of a frame raises :class:`ProtocolError` — the peer
    died mid-send and the connection state is unrecoverable.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("EOF inside frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("EOF inside frame body") from exc
    return decode_message(payload)


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Frame and send one message, honouring transport backpressure."""
    writer.write(encode_message(message))
    await writer.drain()


def error_response(op: str, error: str, **extra) -> dict:
    return {"ok": False, "op": op, "error": error, **extra}


# --------------------------------------------------------------------------
# Binary protocol (v2)
# --------------------------------------------------------------------------


def pack_get_request(index: int, oid: int | None, size: int) -> bytes:
    """One framed BIN_GET; ``oid=None`` skips server-side oid validation."""
    return _FRAME_GET.pack(
        BIN_MAGIC,
        BIN_GET,
        _BIN_GET_BODY.size,
        index,
        BIN_NO_OID if oid is None else oid,
        size,
    )


def pack_get_response(index: int, hit: bool, admitted: bool, denied: bool) -> bytes:
    """One framed BIN_GET_OK echoing ``index`` (pipelining correlation)."""
    flags = 0
    if hit:
        flags |= FLAG_HIT
    if admitted:
        flags |= FLAG_ADMITTED
    if denied:
        flags |= FLAG_DENIED
    return _FRAME_GET_OK.pack(BIN_MAGIC, BIN_GET_OK, _BIN_GET_OK_BODY.size, index, flags)


def pack_get_error(index: int, error: str) -> bytes:
    """One framed BIN_GET_ERR carrying UTF-8 error text after the index."""
    text = error.encode("utf-8")[: 0xFFFF - _BIN_INDEX.size]
    length = _BIN_INDEX.size + len(text)
    return (
        _BIN_HEADER.pack(BIN_MAGIC, BIN_GET_ERR, length)
        + _BIN_INDEX.pack(index)
        + text
    )


def _parse_get_run(buf, pos: int, avail: int, frames: list) -> int:
    """Bulk-parse a homogeneous run of BIN_GET frames; returns bytes consumed.

    Treats ``buf[pos:]`` as consecutive 16-byte frames, keeps the longest
    prefix whose magic/op/length columns all match a well-formed BIN_GET
    (vectorised compares), and tuples that prefix in one ``iter_unpack``
    pass.  Returns 0 when the run is too short to beat the per-frame loop;
    the first non-matching frame is left for the caller, which re-parses
    it down the exact per-frame error path.
    """
    size = _FRAME_GET.size
    n = avail // size
    raw = bytes(memoryview(buf)[pos : pos + n * size])
    run = np.frombuffer(raw, dtype=_RUN_GET_DTYPE)
    ok = (
        (run["magic"] == BIN_MAGIC)
        & (run["op"] == BIN_GET)
        & (run["length"] == _BIN_GET_BODY.size)
    )
    k = n if ok.all() else int(ok.argmin())
    if k < _RUN_MIN_FRAMES:
        return 0
    nbytes = k * size
    frames += [
        (BIN_GET, index, None if oid == BIN_NO_OID else oid, size_)
        for _, _, _, index, oid, size_ in _FRAME_GET.iter_unpack(
            raw if k == n else raw[:nbytes]
        )
    ]
    return nbytes


def _parse_get_ok_run(buf, pos: int, avail: int, frames: list) -> int:
    """BIN_GET_OK twin of :func:`_parse_get_run` (9-byte response frames)."""
    size = _FRAME_GET_OK.size
    n = avail // size
    raw = bytes(memoryview(buf)[pos : pos + n * size])
    run = np.frombuffer(raw, dtype=_RUN_GET_OK_DTYPE)
    ok = (
        (run["magic"] == BIN_MAGIC)
        & (run["op"] == BIN_GET_OK)
        & (run["length"] == _BIN_GET_OK_BODY.size)
    )
    k = n if ok.all() else int(ok.argmin())
    if k < _RUN_MIN_FRAMES:
        return 0
    nbytes = k * size
    frames += [
        (BIN_GET_OK, index, flags)
        for _, _, _, index, flags in _FRAME_GET_OK.iter_unpack(
            raw if k == n else raw[:nbytes]
        )
    ]
    return nbytes


class FrameDecoder:
    """Incremental parser for a mixed JSON/binary frame stream.

    ``feed(data)`` appends one socket chunk to the reused internal buffer
    and returns every complete frame it now holds, in order:

    * a JSON frame decodes to its ``dict``;
    * a binary frame decodes to a tuple whose first element is the op —
      ``(BIN_GET, index, oid, size)`` (``oid`` is ``None`` when the client
      sent ``BIN_NO_OID``), ``(BIN_GET_OK, index, flags)``, or
      ``(BIN_GET_ERR, index, message)``.

    A malformed stream raises :class:`ProtocolError` with any frames parsed
    ahead of the violation attached as ``exc.frames``; the decoder is dead
    afterwards (the connection must be closed — framing is unrecoverable).
    ``pending`` is the buffered byte count: nonzero at EOF means the peer
    died mid-frame.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def pending(self) -> int:
        return len(self._buf)

    def feed(self, data) -> list:
        buf = self._buf
        buf += data
        frames: list = []
        append = frames.append
        unpack_get = _BIN_GET_BODY.unpack_from
        unpack_ok = _BIN_GET_OK_BODY.unpack_from
        pos = 0
        end = len(buf)
        while True:
            avail = end - pos
            if avail < 1:
                break
            first = buf[pos]
            if first == BIN_MAGIC:
                if avail < _BIN_HEADER.size:
                    break
                op = buf[pos + 1]
                # A backlogged read carries thousands of identical
                # fixed-size frames; hand homogeneous runs to the
                # vectorised parser (numpy validation + one iter_unpack
                # pass) and fall through for the remainder.
                if op == BIN_GET:
                    if avail >= _RUN_MIN_FRAMES * _FRAME_GET.size:
                        parsed = _parse_get_run(buf, pos, avail, frames)
                        if parsed:
                            pos += parsed
                            continue
                elif op == BIN_GET_OK:
                    if avail >= _RUN_MIN_FRAMES * _FRAME_GET_OK.size:
                        parsed = _parse_get_ok_run(buf, pos, avail, frames)
                        if parsed:
                            pos += parsed
                            continue
                # Header fields read by byte arithmetic — one Struct call
                # per frame (the body) instead of two.
                length = (buf[pos + 2] << 8) | buf[pos + 3]
                if avail < _BIN_HEADER.size + length:
                    break
                start = pos + _BIN_HEADER.size
                pos = start + length
                if op == BIN_GET:
                    if length != _BIN_GET_BODY.size:
                        raise ProtocolError(
                            f"BIN_GET payload must be {_BIN_GET_BODY.size} "
                            f"bytes, got {length}",
                            frames=frames,
                        )
                    index, oid, size = unpack_get(buf, start)
                    append(
                        (BIN_GET, index, None if oid == BIN_NO_OID else oid, size)
                    )
                elif op == BIN_GET_OK:
                    if length != _BIN_GET_OK_BODY.size:
                        raise ProtocolError(
                            f"BIN_GET_OK payload must be {_BIN_GET_OK_BODY.size} "
                            f"bytes, got {length}",
                            frames=frames,
                        )
                    index, flags = unpack_ok(buf, start)
                    append((BIN_GET_OK, index, flags))
                elif op == BIN_GET_ERR:
                    if length < _BIN_INDEX.size:
                        raise ProtocolError(
                            "BIN_GET_ERR payload too short", frames=frames
                        )
                    (index,) = _BIN_INDEX.unpack_from(buf, start)
                    message = bytes(
                        buf[start + _BIN_INDEX.size : pos]
                    ).decode("utf-8", "replace")
                    frames.append((BIN_GET_ERR, index, message))
                else:
                    raise ProtocolError(
                        f"unknown binary op 0x{op:02x}", frames=frames
                    )
            elif first == 0:
                if avail < _HEADER.size:
                    break
                length = (buf[pos + 1] << 16) | (buf[pos + 2] << 8) | buf[pos + 3]
                if length > MAX_MESSAGE_BYTES:
                    raise ProtocolError(
                        f"frame of {length} bytes exceeds limit", frames=frames
                    )
                if avail < _HEADER.size + length:
                    break
                start = pos + _HEADER.size
                pos = start + length
                try:
                    frames.append(decode_message(bytes(buf[start:pos])))
                except ProtocolError as exc:
                    raise ProtocolError(str(exc), frames=frames) from exc
            else:
                raise ProtocolError(
                    f"bad frame discriminator byte 0x{first:02x}", frames=frames
                )
        if pos:
            del buf[:pos]
        return frames
