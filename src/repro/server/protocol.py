"""Length-prefixed JSON wire protocol for the cache-node service.

Framing is a 4-byte big-endian unsigned length followed by a UTF-8 JSON
object — the simplest self-delimiting format that supports pipelining
(many requests in flight per connection) and stays debuggable with
``nc``/``xxd``.  A production node would speak a binary protocol; JSON
keeps the reproduction inspectable without changing the system's shape.

Operations (client → server)
----------------------------
``GET``     ``{"op": "GET", "index": i, "oid": ..., "size": ...}`` —
            one replayed trace request.  ``index`` is the trace position
            (the server sequences requests by it), ``oid``/``size`` are
            validated against the server's catalog.
``STATS``   metrics snapshot (:mod:`repro.server.metrics`).
``RELOAD``  force an immediate classifier retrain + atomic model swap.
``RESET``   clear cache/statistics state and rewind the replay cursor.
``TRACE``   drain sampled decision-trace events (``{"op": "TRACE",
            "limit": n, "clear": bool}`` — both fields optional); errors
            if the node was started without tracing.
``SPANS``   drain the span tracer's ring buffer (``{"op": "SPANS",
            "limit": n, "clear": bool}``); errors if the node was
            started without span tracing (``repro serve --spans``).
``PING``    liveness check.

Every response carries ``"ok"`` (bool) and echoes ``"op"``; GET responses
echo ``"index"`` so pipelined responses can be correlated out of order.
Errors are in-band: ``{"ok": false, "op": ..., "error": "..."}``.
"""

from __future__ import annotations

import asyncio
import json
import struct

__all__ = [
    "MAX_MESSAGE_BYTES",
    "OPS",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "read_message",
    "write_message",
    "error_response",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame — a STATS snapshot is a few KB; anything near
#: this limit indicates a corrupt or hostile frame, not a real message.
MAX_MESSAGE_BYTES = 4 * 2**20

OPS = ("GET", "STATS", "RELOAD", "RESET", "TRACE", "SPANS", "PING")


class ProtocolError(ValueError):
    """A frame that violates the wire format (length, JSON, or shape)."""


def encode_message(message: dict) -> bytes:
    """Serialise one message to its framed wire form."""
    if not isinstance(message, dict):
        raise ProtocolError("message must be a dict")
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(payload)} bytes exceeds limit")
    return _HEADER.pack(len(payload)) + payload


def decode_message(payload: bytes) -> dict:
    """Parse one frame *body* (header already stripped)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame must decode to a JSON object")
    return message


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one framed message; ``None`` on clean EOF at a frame boundary.

    EOF in the *middle* of a frame raises :class:`ProtocolError` — the peer
    died mid-send and the connection state is unrecoverable.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("EOF inside frame header") from exc
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds limit")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("EOF inside frame body") from exc
    return decode_message(payload)


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Frame and send one message, honouring transport backpressure."""
    writer.write(encode_message(message))
    await writer.drain()


def error_response(op: str, error: str, **extra) -> dict:
    return {"ok": False, "op": op, "error": error, **extra}
