"""repro — reproduction of *Efficient SSD Caching by Avoiding Unnecessary
Writes using Machine Learning* (Wang, Yi, Huang, Cheng, Zhou — ICPP 2018).

The package is organised as three substrates plus the paper's contribution:

``repro.trace``
    Synthetic Tencent QQPhoto workload generator (the proprietary trace is
    replaced by a statistically calibrated synthesis; see DESIGN.md §2).
``repro.ml``
    From-scratch NumPy machine-learning library (CART and the six Table-1
    comparison classifiers, metrics, cost-sensitive learning).
``repro.cache``
    Byte-accurate cache simulator (LRU, FIFO, S3LRU, ARC, LIRS, LFU,
    Belady) with a pluggable admission policy.
``repro.core``
    The one-time-access-exclusion system: reaccess-distance criteria,
    feature extraction, the classifier + history-table admission filter,
    daily retraining, and the latency model.

Quickstart
----------
>>> from repro import run_experiment, WorkloadConfig
>>> result = run_experiment(WorkloadConfig(n_objects=5000, seed=7),
...                         policy="lru", capacity_fraction=0.05)
>>> 0.0 <= result.proposal.hit_rate <= 1.0
True
"""

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_LATENCY",
    "ScaledCapacity",
    "paper_equivalent_bytes",
    "ExperimentResult",
    "run_experiment",
    "WorkloadConfig",
    "generate_trace",
    "simulate",
    "make_policy",
    "GridRunner",
    "__version__",
]

# Lazy re-exports (PEP 562): importing `repro` stays cheap, and subpackages
# remain importable in isolation.
_EXPORTS = {
    "DEFAULT_LATENCY": ("repro.config", "DEFAULT_LATENCY"),
    "ScaledCapacity": ("repro.config", "ScaledCapacity"),
    "paper_equivalent_bytes": ("repro.config", "paper_equivalent_bytes"),
    "ExperimentResult": ("repro.core.pipeline", "ExperimentResult"),
    "run_experiment": ("repro.core.pipeline", "run_experiment"),
    "WorkloadConfig": ("repro.trace.generator", "WorkloadConfig"),
    "generate_trace": ("repro.trace.generator", "generate_trace"),
    "simulate": ("repro.cache.simulator", "simulate"),
    "make_policy": ("repro.cache.simulator", "make_policy"),
    "GridRunner": ("repro.experiments.grid", "GridRunner"),
}


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
