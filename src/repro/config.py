"""Experiment-wide constants and the capacity scaling rules (DESIGN.md §5).

The paper evaluates a 1:100-sampled trace (~14 M objects) with cache sizes of
2–20 GB.  This reproduction runs a further down-scaled synthetic trace, so
capacities are expressed as *fractions of the trace's unique-byte footprint*;
:func:`paper_equivalent_bytes` maps a scaled capacity back to the paper's
axis so every benchmark can print both.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LatencyConstants",
    "DEFAULT_LATENCY",
    "PAPER_CAPACITIES_GB",
    "PAPER_TRACE_FOOTPRINT_GB",
    "ScaledCapacity",
    "paper_equivalent_bytes",
    "paper_capacity_fractions",
]

GiB = 2**30


@dataclass(frozen=True)
class LatencyConstants:
    """Device/service times for the Eq. 3–6 latency model (§5.3.5).

    Values are the paper's measured constants for a 32 KB photo, in seconds.
    """

    t_query: float = 1e-6       # cache index lookup
    t_classify: float = 0.4e-6  # decision tree + history table
    t_hddr: float = 3e-3        # HDD read (backend)
    t_ssdr: float = 0.1e-3      # SSD read (cache hit); typical SATA SSD

    def __post_init__(self) -> None:
        for name in ("t_query", "t_classify", "t_hddr", "t_ssdr"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


DEFAULT_LATENCY = LatencyConstants()

#: The paper's x-axis: cache capacities in GB on the 1:100-sampled trace.
PAPER_CAPACITIES_GB = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)

#: Approximate unique-byte footprint of the paper's sampled trace: ~14 M
#: objects at ~32 KB mean photo size ≈ 450 GB.  Used only for the
#: capacity-fraction mapping, so precision here affects labels, not results.
PAPER_TRACE_FOOTPRINT_GB = 14e6 * 32 * 1024 / GiB


@dataclass(frozen=True)
class ScaledCapacity:
    """A cache capacity on the down-scaled trace with its paper-scale label."""

    bytes: int
    fraction_of_footprint: float
    paper_gb: float

    def __str__(self) -> str:
        return (
            f"{self.bytes / GiB:.4f} GiB scaled "
            f"({100 * self.fraction_of_footprint:.2f}% of footprint, "
            f"≈{self.paper_gb:.1f} GB at paper scale)"
        )


def paper_capacity_fractions() -> list[float]:
    """The paper's 2–20 GB sweep as fractions of its trace footprint."""
    return [gb / PAPER_TRACE_FOOTPRINT_GB for gb in PAPER_CAPACITIES_GB]


def paper_equivalent_bytes(
    fraction: float, trace_footprint_bytes: int
) -> ScaledCapacity:
    """Scale a capacity *fraction* onto a concrete trace.

    Parameters
    ----------
    fraction:
        Capacity as a fraction of the trace's unique-byte footprint
        (e.g. from :func:`paper_capacity_fractions`).
    trace_footprint_bytes:
        Sum of unique object sizes in the trace being simulated.
    """
    if not 0 < fraction:
        raise ValueError("fraction must be positive")
    if trace_footprint_bytes <= 0:
        raise ValueError("trace_footprint_bytes must be positive")
    return ScaledCapacity(
        bytes=max(1, int(fraction * trace_footprint_bytes)),
        fraction_of_footprint=fraction,
        paper_gb=fraction * PAPER_TRACE_FOOTPRINT_GB,
    )
