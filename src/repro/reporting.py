"""Plain-text / markdown reporting for experiment results.

Turns the package's result objects into aligned tables and a consolidated
markdown report — the artefact a downstream user hands around after running
the reproduction on their own workload.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.core.pipeline import ExperimentResult
from repro.trace.records import Trace
from repro.trace.stats import compute_stats

__all__ = ["format_table", "experiment_section", "markdown_report", "write_report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    floatfmt: str = ".3f",
    markdown: bool = False,
) -> str:
    """Render an aligned text (or markdown) table.

    Floats are formatted with ``floatfmt``; everything else through
    ``str``.  Column widths adapt to content.
    """
    if not headers:
        raise ValueError("headers must be non-empty")

    def cell(value) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    if markdown:
        head = "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
        sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
        body = [
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
            for row in str_rows
        ]
        return "\n".join([head, sep, *body])
    head = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    body = ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in str_rows]
    return "\n".join([head, *body])


def experiment_section(result: ExperimentResult, *, markdown: bool = True) -> str:
    """One experiment as a report section (the four-configuration table)."""
    rows = []
    for name, sim in (
        ("original", result.original),
        ("proposal", result.proposal),
        ("ideal", result.ideal),
        ("belady", result.belady),
    ):
        if sim is None:
            continue
        rows.append(
            [
                name,
                sim.hit_rate,
                sim.byte_hit_rate,
                sim.file_write_rate,
                sim.byte_write_rate,
            ]
        )
    table = format_table(
        ["config", "hit", "byte hit", "file writes", "byte writes"],
        rows,
        markdown=markdown,
    )
    header = (
        f"### {result.policy.upper()} @ "
        f"{result.capacity_bytes / 2**20:.1f} MiB "
        f"({100 * result.capacity_fraction:.2f}% of footprint)"
        if markdown
        else f"{result.policy.upper()} @ {result.capacity_bytes / 2**20:.1f} MiB"
    )
    extras = (
        f"criterion M = {result.criteria.m_threshold:,.0f}, "
        f"cost v = {result.cost_v:g}, "
        f"write reduction = {100 * result.write_reduction:.1f}%, "
        f"latency {1e3 * result.latency_original:.3f} → "
        f"{1e3 * result.latency_proposal:.3f} ms "
        f"({100 * result.latency_improvement:+.1f}%)"
    )
    return f"{header}\n\n{table}\n\n{extras}\n"


def markdown_report(
    trace: Trace,
    results: Sequence[ExperimentResult],
    *,
    title: str = "One-time-access-exclusion report",
) -> str:
    """Full report: workload statistics + one section per experiment."""
    stats = compute_stats(trace)
    lines = [
        f"# {title}",
        "",
        "## Workload",
        "",
        format_table(
            ["quantity", "value"],
            [
                ["accesses", f"{stats.n_accesses:,}"],
                ["objects", f"{stats.n_objects:,}"],
                ["mean accesses/object", stats.mean_accesses_per_object],
                ["one-time object fraction", stats.one_time_object_fraction],
                ["hit-rate cap (1 − N/A)", stats.hit_rate_cap],
                ["footprint", f"{stats.footprint_bytes / 2**30:.3f} GiB"],
            ],
            markdown=True,
        ),
        "",
        "## Experiments",
        "",
    ]
    for result in results:
        lines.append(experiment_section(result))
    return "\n".join(lines)


def write_report(
    path: str | Path,
    trace: Trace,
    results: Sequence[ExperimentResult],
    **kwargs,
) -> Path:
    """Write the markdown report to ``path`` and return it."""
    path = Path(path)
    path.write_text(markdown_report(trace, results, **kwargs))
    return path
