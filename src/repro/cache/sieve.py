"""SIEVE (Zhang et al., NSDI'24) — lazy-promotion FIFO eviction.

The most recent point in the scan-resistance lineage this paper's
evaluation spans (FIFO → S3LRU/2Q → ARC/LIRS): a single FIFO queue, one
*visited* bit per object, and a roving **hand**.  Hits just set the bit
(no list movement — "lazy promotion"); eviction walks the hand from tail
toward head, clearing visited bits and evicting the first unvisited
object ("quick demotion" of one-timers).

Included because SIEVE attacks exactly the paper's problem — one-hit
wonders — structurally and with FIFO-write friendliness on flash.

Implementation: an intrusive doubly-linked list over dict nodes, O(1)
amortised per operation (the hand's work is paid for by the bits it
clears).
"""

from __future__ import annotations

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["SieveCache"]


class _Node:
    __slots__ = ("oid", "size", "visited", "prev", "next")

    def __init__(self, oid: int, size: int):
        self.oid = oid
        self.size = size
        self.visited = False
        self.prev: _Node | None = None
        self.next: _Node | None = None


class SieveCache(CachePolicy):
    """SIEVE over integer object ids, size-aware."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._nodes: dict[int, _Node] = {}
        self._head: _Node | None = None  # newest
        self._tail: _Node | None = None  # oldest
        self._hand: _Node | None = None
        self._used = 0

    # ------------------------------------------------------------ list ops

    def _push_head(self, node: _Node) -> None:
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        if self._tail is None:
            self._tail = node

    def _unlink(self, node: _Node) -> None:
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev

    def _evict_one(self) -> int:
        hand = self._hand if self._hand is not None else self._tail
        # Walk toward the head, clearing visited bits, until an unvisited
        # object is found (guaranteed to terminate: bits only get cleared).
        while hand is not None and hand.visited:
            hand.visited = False
            hand = hand.prev
        if hand is None:  # wrapped past the head: restart from the tail
            hand = self._tail
            while hand is not None and hand.visited:
                hand.visited = False
                hand = hand.prev
            assert hand is not None, "eviction from an empty cache"
        victim = hand
        self._hand = victim.prev  # hand keeps its position (minus victim)
        self._unlink(victim)
        del self._nodes[victim.oid]
        self._used -= victim.size
        return victim.oid

    # --------------------------------------------------------------- access

    def can_batch_hits(self) -> bool:
        # A hit only sets the node's visited bit — no movement, no eviction
        # — so a run of hits collapses to one bit-set per distinct object.
        return True

    def access_batch(self, oids, sizes, distinct=None) -> tuple[int, tuple[int, ...]]:
        # Hit order is irrelevant for SIEVE (idempotent bit-sets), so one
        # membership sweep over the distinct objects suffices.
        n = len(oids)
        if n == 0:
            return 0, ()
        if distinct is None:
            if hasattr(oids, "tolist"):  # plain ints hash/compare faster
                oids = oids.tolist()
                sizes = sizes.tolist()
            if min(sizes) <= 0:
                return super().access_batch(oids, sizes)
            distinct = set(oids)
        get = self._nodes.get
        batch = []
        for o in distinct:
            node = get(o)
            if node is None:
                # Not the all-hit run the caller expected — fall back to
                # the exact early-stopping loop.
                return super().access_batch(oids, sizes)
            batch.append(node)
        for node in batch:
            node.visited = True
        return n, ()

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        node = self._nodes.get(oid)
        if node is not None:
            node.visited = True  # lazy promotion: no list movement
            return AccessResult(hit=True)
        if not admit or size > self.capacity:
            return AccessResult(hit=False)
        evicted = []
        while self._used + size > self.capacity:
            evicted.append(self._evict_one())
        node = _Node(oid, size)
        self._nodes[oid] = node
        self._push_head(node)
        self._used += size
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    # ------------------------------------------------------------ interface

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)
