"""Vectorised hit-run segmenting for the trace simulator.

The simulator's per-request Python loop costs ~0.5–2 µs/access even when
nothing interesting happens — e.g. long stretches of a hit-dominated replay
where no admission decision or eviction can alter observable policy state.
This module precomputes, once per trace, where those stretches *must* be.

Theory
------
Let ``d_i`` be the **byte-weighted Mattson stack distance** of access *i*
(:func:`repro.trace.analysis.stack_distances` with ``weights=trace.sizes``):
the total size of distinct objects touched strictly between access *i* and
the previous access of the same object.  For an LRU cache of capacity *C*
in which every miss is admitted::

    d_i + size_i <= C   =>   access i is a hit

Proof sketch: after its previous access the object sits on top of the
recency stack.  Any later insertion evicts from the LRU end, and can only
reach our object once every resident more recent than it is gone — but
those residents (plus the incoming object) are a subset of the distinct
objects touched since, whose bytes sum to at most ``d_i``, so the eviction
loop stops while ``d_i + size_i <= C`` still holds.  The condition is
sufficient, not necessary: accesses that fail it may still hit and are
simply left to the per-request loop.

Under a *denying* admission policy the implication needs the previous
access to have left the object resident, which the simulator (or the
policy's :meth:`~repro.cache.base.CachePolicy.access_batch`) re-confirms at
run time against actual cache contents — the plan only nominates
*candidate* runs, it never vouches for semantics.  The same holds for
non-LRU policies (FIFO, S3LRU, …) where the mask is a heuristic: candidate
runs that turn out to contain misses fall back to the exact loop.

Promotions
----------
Within a proven-hit run the resident set cannot change, so the only state a
stack policy carries out of the run is the final recency order — decided
entirely by each distinct object's **last occurrence**.  :meth:`
SegmentPlan.batches` therefore ships each run with its deduplicated
last-occurrence oid list (computed vectorised from a capacity-independent
next-occurrence index), which lets LRU replace ``len(run)`` ``move_to_end``
calls with ``len(distinct)`` of them and lets FIFO/SIEVE touch only the
distinct set.  On skewed workloads ``distinct/len`` is 0.2–0.4, which is
where most of the batching win comes from.

Cost: one O(n log n) Fenwick pass per trace (shared across every capacity
and policy — :class:`~repro.experiments.grid.GridRunner` reuses it for the
whole 5-policy × 4-config × 10-capacity grid), then one vectorised compare
+ run-length encoding + promotion gather per distinct capacity.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import Trace

__all__ = ["SegmentPlan", "DEFAULT_MIN_RUN"]

#: Minimum candidate-run length worth batching: below this the fixed cost
#: of the batch call + bookkeeping exceeds the loop it saves.
DEFAULT_MIN_RUN = 16

#: Attribute used to cache the plan on a Trace instance (traces are treated
#: as immutable once built, so the cache can never go stale).
_TRACE_CACHE_ATTR = "_segment_plan"


class SegmentPlan:
    """Per-trace index of guaranteed-hit candidate runs.

    Parameters
    ----------
    trace:
        The workload; only ``object_ids`` and per-access sizes are read.
    min_run:
        Shortest run of consecutive mask-true accesses worth emitting.

    The expensive part (the byte-weighted stack-distance pass) runs once in
    the constructor; :meth:`hit_runs` / :meth:`batches` are cheap
    vectorised passes per capacity, memoised because a grid evaluates
    several policies at the same capacity.
    """

    def __init__(self, trace: Trace, *, min_run: int = DEFAULT_MIN_RUN):
        # Deferred import: repro.trace.analysis itself imports from
        # repro.cache (Belady's next-use oracle), so a module-level import
        # here would close an import cycle through the package __init__s.
        from repro.trace.analysis import COLD_MISS, stack_distances

        if min_run < 1:
            raise ValueError("min_run must be >= 1")
        self.min_run = int(min_run)
        self._oids = np.ascontiguousarray(trace.object_ids)
        sizes = trace.sizes.astype(np.int64, copy=False)
        distances = stack_distances(self._oids, weights=sizes)
        # Demand = bytes that must fit for the access to be a proven hit
        # (the distinct intruders plus the object itself).  COLD_MISS stays
        # saturated rather than overflowing int64; nonpositive sizes (which
        # the per-request path rejects with ValueError) are saturated too so
        # they can never land inside a batch.
        self._demand = np.where(
            (distances == COLD_MISS) | (sizes <= 0),
            COLD_MISS,
            distances + sizes,
        )
        self.n_accesses = int(sizes.shape[0])
        # Exclusive prefix sum of request bytes: batch byte counters become
        # two O(1) lookups instead of an O(batch) slice-sum per batch.
        self.prefix_bytes = np.concatenate(
            ([0], np.cumsum(sizes, dtype=np.int64))
        )
        self._next_occ: np.ndarray | None = None
        self._runs: dict[int, np.ndarray] = {}
        self._batches: dict[int, list] = {}

    # ---------------------------------------------------------------- runs

    def hit_runs(self, capacity_bytes: int) -> np.ndarray:
        """Candidate guaranteed-hit runs for one capacity.

        Returns an ``(k, 2)`` int64 array of ``[start, end)`` trace-index
        pairs, sorted and disjoint, each at least ``min_run`` long.
        """
        capacity_bytes = int(capacity_bytes)
        runs = self._runs.get(capacity_bytes)
        if runs is None:
            runs = _mask_to_runs(
                self._demand <= capacity_bytes, self.min_run
            )
            self._runs[capacity_bytes] = runs
        return runs

    def batches(
        self, capacity_bytes: int
    ) -> "list[tuple[int, int, list[int]]]":
        """Per-run work orders: ``(start, end, distinct)`` tuples.

        ``distinct`` lists each distinct oid of ``object_ids[start:end]``
        exactly once, ordered by last occurrence — the promotion order a
        stack policy must apply to finish the run in the same state as the
        per-request loop (see
        :meth:`repro.cache.base.CachePolicy.access_batch`).  Built with one
        vectorised gather over a capacity-independent next-occurrence
        index, then memoised per capacity.
        """
        capacity_bytes = int(capacity_bytes)
        batches = self._batches.get(capacity_bytes)
        if batches is None:
            batches = self._build_batches(self.hit_runs(capacity_bytes))
            self._batches[capacity_bytes] = batches
        return batches

    def _ensure_next_occ(self) -> np.ndarray:
        if self._next_occ is None:
            # next_occ[i] = index of the next access of the same object,
            # or n when there is none.  A stable argsort groups accesses by
            # oid with positions ascending inside each group, so each
            # element's successor within its group is its next occurrence.
            n = self.n_accesses
            order = np.argsort(self._oids, kind="stable")
            sorted_oids = self._oids[order]
            next_occ = np.full(n, n, dtype=np.int64)
            same = sorted_oids[1:] == sorted_oids[:-1]
            next_occ[order[:-1][same]] = order[1:][same]
            self._next_occ = next_occ
        return self._next_occ

    def _build_batches(self, runs: np.ndarray) -> list:
        if runs.shape[0] == 0:
            return []
        self._ensure_next_occ()
        starts = runs[:, 0]
        ends = runs[:, 1]
        lens = ends - starts
        # All in-run positions, concatenated: repeat each run's start minus
        # the running offset, then add arange — the standard "vectorised
        # concatenated aranges" construction.
        offsets = np.concatenate(([0], np.cumsum(lens)[:-1]))
        pos = np.repeat(starts - offsets, lens) + np.arange(int(lens.sum()))
        # Last occurrence *within its run*: the next access of the same
        # object falls at or beyond the run end.
        last = self._next_occ[pos] >= np.repeat(ends, lens)
        promo_pos = pos[last]
        promo_oids = self._oids[promo_pos].tolist()
        cuts = np.searchsorted(promo_pos, ends).tolist()
        out = []
        lo = 0
        for s, e, hi in zip(starts.tolist(), ends.tolist(), cuts):
            out.append((s, e, promo_oids[lo:hi]))
            lo = hi
        return out

    def coverage(self, capacity_bytes: int) -> float:
        """Fraction of trace accesses inside candidate runs (telemetry)."""
        runs = self.hit_runs(capacity_bytes)
        if runs.shape[0] == 0:
            return 0.0
        return float((runs[:, 1] - runs[:, 0]).sum() / self.n_accesses)

    # ------------------------------------------------------ array round-trip

    def export_arrays(self) -> dict:
        """The capacity-independent plan state as plain int64 arrays.

        ``demand``, ``prefix_bytes`` and ``next_occ`` are everything the
        O(n log n) construction produces; :meth:`from_arrays` rebuilds an
        equivalent plan from them without re-running the Fenwick pass.  The
        per-capacity run/batch memos are *not* exported — they are cheap
        vectorised passes each consumer re-derives for the capacities it
        actually touches.  Used by :mod:`repro.experiments.shm` to ship the
        plan to spawn workers through shared memory.
        """
        return {
            "oids": self._oids,
            "demand": self._demand,
            "prefix_bytes": self.prefix_bytes,
            "next_occ": self._ensure_next_occ(),
        }

    @classmethod
    def from_arrays(
        cls, arrays: dict, *, min_run: int = DEFAULT_MIN_RUN
    ) -> "SegmentPlan":
        """Rebuild a plan from :meth:`export_arrays` output (zero-copy).

        ``arrays`` holds ``oids``/``demand``/``prefix_bytes``/``next_occ``
        (shared-memory views or otherwise) of matching length.  No
        stack-distance pass runs.
        """
        if min_run < 1:
            raise ValueError("min_run must be >= 1")
        oids = arrays["oids"]
        n = int(oids.shape[0])
        demand = arrays["demand"]
        prefix = arrays["prefix_bytes"]
        next_occ = arrays["next_occ"]
        if demand.shape[0] != n or next_occ.shape[0] != n:
            raise ValueError("plan arrays disagree with trace length")
        if prefix.shape[0] != n + 1:
            raise ValueError("prefix_bytes must have n_accesses + 1 entries")
        plan = cls.__new__(cls)
        plan.min_run = int(min_run)
        plan._oids = oids
        plan._demand = demand
        plan.n_accesses = n
        plan.prefix_bytes = prefix
        plan._next_occ = next_occ
        plan._runs = {}
        plan._batches = {}
        return plan

    # -------------------------------------------------------------- caching

    def install(self, trace: Trace) -> "SegmentPlan":
        """Attach this plan as ``trace``'s cached plan (explicitly).

        Worker initialisation uses this instead of relying on
        :meth:`for_trace` finding an inherited attribute: under ``spawn`` or
        ``forkserver`` nothing is inherited, and an uninitialised worker
        would silently re-run the Fenwick pass per process.
        """
        if self.n_accesses != trace.n_accesses:
            raise ValueError("plan does not match trace length")
        setattr(trace, _TRACE_CACHE_ATTR, self)
        return self

    @classmethod
    def for_trace(cls, trace: Trace) -> "SegmentPlan":
        """Build (or reuse) the plan cached on ``trace``.

        The plan is attached to the Trace instance, so repeated
        ``simulate()`` calls — and forked grid workers, which inherit the
        parent's trace object — pay the Fenwick pass exactly once.
        """
        plan = getattr(trace, _TRACE_CACHE_ATTR, None)
        if plan is None or plan.n_accesses != trace.n_accesses:
            plan = cls(trace)
            setattr(trace, _TRACE_CACHE_ATTR, plan)
        return plan


def _mask_to_runs(mask: np.ndarray, min_run: int) -> np.ndarray:
    """Run-length encode ``mask`` into ``[start, end)`` pairs >= min_run."""
    if not mask.any():
        return np.empty((0, 2), dtype=np.int64)
    padded = np.empty(mask.shape[0] + 2, dtype=np.int8)
    padded[0] = padded[-1] = 0
    padded[1:-1] = mask
    edges = np.diff(padded)
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    keep = (ends - starts) >= min_run
    return np.stack([starts[keep], ends[keep]], axis=1).astype(np.int64)
