"""Segmented LRU with three segments (the paper's "S3LRU").

Karedla/Love/Wherry (1994) segmented LRU, generalised to *k* levels:

* a missed object enters the tail level (probationary segment);
* a hit promotes the object one level up (to that level's MRU end);
* a level that overflows demotes its LRU object one level down;
* overflow of the bottom level evicts from the cache.

Promotion-on-hit means an object needs repeated hits to climb, so scan/
one-time traffic churns only the bottom segment — exactly the property the
paper contrasts against plain LRU.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["S3LRUCache"]


class S3LRUCache(CachePolicy):
    """k-segment LRU (k = 3 by default, byte-partitioned evenly)."""

    def __init__(self, capacity_bytes: int, n_segments: int = 3):
        super().__init__(capacity_bytes)
        if n_segments < 1:
            raise ValueError("n_segments must be >= 1")
        self.n_segments = n_segments
        # segment 0 = probationary (entry level), k-1 = most protected
        self._segments: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(n_segments)
        ]
        self._seg_used = [0] * n_segments
        self._where: dict[int, int] = {}  # oid -> segment index
        self._seg_cap = capacity_bytes // n_segments

    def _overflow(self, level: int, evicted: list[int]) -> None:
        """Demote LRU entries of ``level`` downwards until it fits."""
        while self._seg_used[level] > self._seg_cap:
            oid, size = self._segments[level].popitem(last=False)
            self._seg_used[level] -= size
            if level == 0:
                del self._where[oid]
                evicted.append(oid)
            else:
                self._segments[level - 1][oid] = size
                self._seg_used[level - 1] += size
                self._where[oid] = level - 1
                self._overflow(level - 1, evicted)

    def can_batch_hits(self) -> bool:
        # Hit promotion is stateful (and can demote/evict via segment-quota
        # rounding), so batching uses the base early-stopping loop — still
        # profitable because it skips the simulator's per-request overhead.
        return True

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        level = self._where.get(oid)
        if level is not None:
            seg = self._segments[level]
            sz = seg.pop(oid)
            self._seg_used[level] -= sz
            up = min(level + 1, self.n_segments - 1)
            self._segments[up][oid] = sz
            self._seg_used[up] += sz
            self._where[oid] = up
            evicted: list[int] = []
            self._overflow(up, evicted)
            # A hit can only demote others, never evict: bottom-level
            # overflow is impossible while total bytes are unchanged —
            # except when segment quotas round down; guard anyway.
            return AccessResult(hit=True, evicted=tuple(evicted))
        if not admit or size > self._seg_cap:
            # An object larger than one segment can never be resident.
            return AccessResult(hit=False)
        evicted = []
        self._segments[0][oid] = size
        self._seg_used[0] += size
        self._where[oid] = 0
        self._overflow(0, evicted)
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    @property
    def used_bytes(self) -> int:
        return sum(self._seg_used)

    def __contains__(self, oid: int) -> bool:
        return oid in self._where

    def __len__(self) -> int:
        return len(self._where)
