"""DRAM + SSD two-level cache within a single server.

Production photo caches front the SSD with a small DRAM cache (the paper's
Eq. 5/6 read "from the HDD to the DRAM" — DRAM is the staging tier).  The
interesting interaction with the paper's scheme: *admission control applies
to the SSD tier only*.  One-time photos still get served from DRAM while
they stay hot for seconds, but never touch the flash.

Semantics
---------
* Lookup: L1 (DRAM) first, then L2 (SSD).  An L2 hit promotes the object
  into L1 (inclusive towards the top, as real photo stacks behave).
* Miss: the object always enters L1 (DRAM writes are free); it enters L2
  only if the caller admits it.
* Objects evicted from L1 are *not* written back to L2 (read-only cache —
  backend holds the truth), so L1 eviction is silent.

``AccessResult`` accounting: ``hit`` covers a hit in either level;
``inserted``/``evicted`` report **L2 (SSD) state only**, because those are
the flash writes the paper counts.  L1 state is observable via
``l1_hits``/``l2_hits`` counters.
"""

from __future__ import annotations

from repro.cache.base import AccessResult, CachePolicy
from repro.cache.lru import LRUCache

__all__ = ["HierarchicalCache"]


class HierarchicalCache(CachePolicy):
    """DRAM LRU in front of any SSD-tier policy.

    Parameters
    ----------
    dram:
        The L1 policy (typically a small :class:`~repro.cache.lru.LRUCache`),
        or ``None`` for a zero-size DRAM tier — the degenerate configuration
        in which this wrapper is a transparent shell over ``ssd`` (the
        differential property the hypothesis suite pins down).
    ssd:
        The L2 policy (any :class:`~repro.cache.base.CachePolicy`).

    ``capacity`` reported by this object is the SSD capacity — the resource
    the paper's figures are parameterised by.
    """

    def __init__(self, dram: CachePolicy | None, ssd: CachePolicy):
        super().__init__(ssd.capacity)
        self.dram = dram
        self.ssd = ssd
        self.l1_hits = 0
        self.l2_hits = 0

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        if self.dram is None:
            # Zero-size DRAM degenerates to the bare L2 policy.
            result = self.ssd.access(oid, size, admit=admit)
            if result.hit:
                self.l2_hits += 1
            return result
        # L1 (DRAM) — hits are free and invisible to the SSD counters.
        if oid in self.dram:
            self.dram.access(oid, size)
            self.l1_hits += 1
            # Keep L2 recency warm as well if resident there.  Some
            # policies (e.g. S3LRU promotion overflow) can evict *other*
            # objects on a hit — those must be propagated.
            if oid in self.ssd:
                result = self.ssd.access(oid, size)
                return AccessResult(hit=True, evicted=result.evicted)
            return AccessResult(hit=True)

        if oid in self.ssd:
            self.l2_hits += 1
            result = self.ssd.access(oid, size)
            # Promote into DRAM (no SSD write involved).
            self.dram.access(oid, size)
            return AccessResult(hit=True, evicted=result.evicted)

        # Miss everywhere: DRAM always takes it; SSD only if admitted.
        self.dram.access(oid, size)
        if not admit or size > self.ssd.capacity:
            return AccessResult(hit=False)
        result = self.ssd.access(oid, size, admit=True)
        return AccessResult(
            hit=False, inserted=result.inserted, evicted=result.evicted
        )

    @classmethod
    def with_lru_dram(
        cls, ssd: CachePolicy, *, dram_fraction: float = 0.05
    ) -> "HierarchicalCache":
        """Convenience: DRAM sized as a fraction of the SSD capacity.

        ``dram_fraction=0.0`` builds the zero-size-DRAM degenerate form
        (``dram=None``), a transparent shell over ``ssd``.
        """
        if not 0.0 <= dram_fraction < 1.0:
            raise ValueError("dram_fraction must be in [0, 1)")
        if dram_fraction == 0.0:
            return cls(None, ssd)
        return cls(LRUCache(max(1, int(ssd.capacity * dram_fraction))), ssd)

    @classmethod
    def for_capacity(
        cls, capacity_bytes: int, *, dram_fraction: float = 0.05
    ) -> "HierarchicalCache":
        """Registry-shape constructor: LRU tiers from one capacity."""
        return cls.with_lru_dram(LRUCache(capacity_bytes), dram_fraction=dram_fraction)

    def can_batch_hits(self) -> bool:
        """Hierarchy hits never insert, so the default exact
        ``access_batch`` loop is safe whenever the L2 tier batches."""
        return self.ssd.can_batch_hits()

    # ------------------------------------------------------------ interface

    @property
    def used_bytes(self) -> int:
        """SSD-tier bytes (the figure-relevant resource)."""
        return self.ssd.used_bytes

    @property
    def dram_used_bytes(self) -> int:
        return 0 if self.dram is None else self.dram.used_bytes

    def __contains__(self, oid: int) -> bool:
        if self.dram is not None and oid in self.dram:
            return True
        return oid in self.ssd

    def __len__(self) -> int:
        """Resident entries summed over tiers (objects in both count twice —
        they genuinely occupy space in each)."""
        if self.dram is None:
            return len(self.ssd)
        return len(self.ssd) + len(self.dram)