"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

Byte-weighted adaptation of the original page-based algorithm:

* ``T1`` holds objects seen once recently, ``T2`` objects seen at least
  twice; ``B1``/``B2`` are their ghost (metadata-only) extensions.
* The adaptation target ``p`` is kept in *bytes*: a ghost hit in B1 grows
  ``p`` (favour recency), a ghost hit in B2 shrinks it (favour frequency),
  each step weighted by the byte ratio of the opposite ghost list — the
  direct size-aware generalisation of the paper's unit-page rule.
* Invariants maintained: ``T1+T2 ≤ c`` (bytes), ``T1+B1 ≤ c``,
  ``T1+T2+B1+B2 ≤ 2c``.

Admission bypass (``admit=False``) skips the insertion entirely — the
object neither displaces residents nor enters the ghost lists, mirroring
how the paper's classification front-end returns one-time photos straight
to the client.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["ARCCache"]


class ARCCache(CachePolicy):
    """Size-aware ARC."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._t1: OrderedDict[int, int] = OrderedDict()
        self._t2: OrderedDict[int, int] = OrderedDict()
        self._b1: OrderedDict[int, int] = OrderedDict()
        self._b2: OrderedDict[int, int] = OrderedDict()
        self._t1_bytes = 0
        self._t2_bytes = 0
        self._b1_bytes = 0
        self._b2_bytes = 0
        self._p = 0.0  # adaptation target for T1, in bytes

    # ------------------------------------------------------------ internals

    def _replace(self, incoming_in_b2: bool, evicted: list[int]) -> None:
        """Evict one object from T1 or T2 into its ghost list."""
        # With byte-weighted sizes the unit-page invariant "preferred list
        # is non-empty" can break (e.g. T2 empty while t1_bytes <= p), so
        # fall back to whichever list has residents.  At least one does:
        # _make_room only runs when t1_bytes + t2_bytes + size > c and
        # size > c inserts are rejected up front.
        if self._t1 and (
            not self._t2
            or self._t1_bytes > self._p
            or (incoming_in_b2 and self._t1_bytes >= max(self._p, 1))
        ):
            oid, size = self._t1.popitem(last=False)
            self._t1_bytes -= size
            self._b1[oid] = size
            self._b1_bytes += size
        else:
            oid, size = self._t2.popitem(last=False)
            self._t2_bytes -= size
            self._b2[oid] = size
            self._b2_bytes += size
        evicted.append(oid)

    def _trim_ghosts(self) -> None:
        """Enforce |T1|+|B1| ≤ c and total directory ≤ 2c (in bytes)."""
        c = self.capacity
        while self._b1 and self._t1_bytes + self._b1_bytes > c:
            _, size = self._b1.popitem(last=False)
            self._b1_bytes -= size
        while (
            self._b2
            and self._t1_bytes + self._t2_bytes + self._b1_bytes + self._b2_bytes
            > 2 * c
        ):
            _, size = self._b2.popitem(last=False)
            self._b2_bytes -= size

    def _make_room(self, size: int, incoming_in_b2: bool, evicted: list[int]) -> None:
        while self._t1_bytes + self._t2_bytes + size > self.capacity:
            self._replace(incoming_in_b2, evicted)

    # --------------------------------------------------------------- access

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        c = self.capacity

        # Case I: hit in T1 or T2 — promote to T2 MRU.
        if oid in self._t1:
            sz = self._t1.pop(oid)
            self._t1_bytes -= sz
            self._t2[oid] = sz
            self._t2_bytes += sz
            return AccessResult(hit=True)
        if oid in self._t2:
            self._t2.move_to_end(oid)
            return AccessResult(hit=True)

        if not admit or size > c:
            return AccessResult(hit=False)

        evicted: list[int] = []

        # Case II: ghost hit in B1 — grow p toward recency.
        if oid in self._b1:
            ratio = max(self._b2_bytes / max(self._b1_bytes, 1), 1.0)
            self._p = min(self._p + ratio * size, float(c))
            sz = self._b1.pop(oid)
            self._b1_bytes -= sz
            self._make_room(size, incoming_in_b2=False, evicted=evicted)
            self._t2[oid] = size
            self._t2_bytes += size
            self._trim_ghosts()
            return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

        # Case III: ghost hit in B2 — shrink p toward frequency.
        if oid in self._b2:
            ratio = max(self._b1_bytes / max(self._b2_bytes, 1), 1.0)
            self._p = max(self._p - ratio * size, 0.0)
            sz = self._b2.pop(oid)
            self._b2_bytes -= sz
            self._make_room(size, incoming_in_b2=True, evicted=evicted)
            self._t2[oid] = size
            self._t2_bytes += size
            self._trim_ghosts()
            return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

        # Case IV: cold miss — insert into T1 MRU.
        self._make_room(size, incoming_in_b2=False, evicted=evicted)
        self._t1[oid] = size
        self._t1_bytes += size
        self._trim_ghosts()
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    # ------------------------------------------------------------ interface

    @property
    def used_bytes(self) -> int:
        return self._t1_bytes + self._t2_bytes

    @property
    def p_target(self) -> float:
        """Current recency/frequency balance (bytes aimed at T1)."""
        return self._p

    def __contains__(self, oid: int) -> bool:
        return oid in self._t1 or oid in self._t2

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)
