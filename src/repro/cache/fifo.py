"""First-In-First-Out replacement: eviction order ignores recency."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["FIFOCache"]

#: Shared frozen hit result — see the note in :mod:`repro.cache.lru`.
_HIT = AccessResult(hit=True)


class FIFOCache(CachePolicy):
    """FIFO — identical bookkeeping to LRU minus the hit promotion."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()  # oid -> size
        self._used = 0

    def access_if_present(self, oid: int, size: int) -> AccessResult | None:
        # A FIFO hit has no side effects, so the peek is one lookup.
        self._validate_request(size)
        return _HIT if oid in self._entries else None

    def can_batch_hits(self) -> bool:
        return True

    def access_batch(self, oids, sizes, distinct=None) -> tuple[int, tuple[int, ...]]:
        # FIFO hits mutate nothing, so a confirmed all-resident run is a
        # pure no-op: one membership sweep over the distinct objects.
        n = len(oids)
        if n == 0:
            return 0, ()
        if distinct is None:
            if isinstance(oids, np.ndarray):  # plain ints hash faster
                oids = oids.tolist()
                sizes = sizes.tolist()
            if min(sizes) <= 0:
                return super().access_batch(oids, sizes)
            distinct = set(oids)
        entries = self._entries
        for o in distinct:
            if o not in entries:
                return super().access_batch(oids, sizes)
        return n, ()

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        if oid in self._entries:
            return _HIT
        if not admit or size > self.capacity:
            return AccessResult(hit=False)
        evicted = []
        while self._used + size > self.capacity:
            victim, vsize = self._entries.popitem(last=False)
            self._used -= vsize
            evicted.append(victim)
        self._entries[oid] = size
        self._used += size
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._entries

    def __len__(self) -> int:
        return len(self._entries)
