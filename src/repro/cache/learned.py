"""Learned eviction: sampled candidates ranked by predicted reuse distance.

The paper learns *admission* (avoid unnecessary SSD writes); this module
adds the complementary half from the later learned-cache literature
(MAT's minimal-overhead sampled eviction, "Learning Forward Reuse
Distance", LRB): on every eviction, sample ``K`` residents, predict each
one's forward reuse distance with a small regression tree, and evict the
one predicted to be needed farthest in the future — Belady's rule with a
learned oracle.

Design
------
* **Decision-time features.**  A candidate is described by what the
  policy can see *now*: its current idle age, its last inter-access gap,
  its size, its access count and the idle/gap overshoot ratio (all logs;
  the clock is a logical request counter, so replay is deterministic).
  Idle age is the load-bearing feature — on a majority-one-time workload
  a fresh object that has out-waited the typical re-access gap is almost
  surely dead, and the tree learns exactly that split.  Feature rows
  captured at a *past* access don't contain the candidate's current age
  and rank dead newcomers below marginally-late hot objects (measured:
  it flips the Belady-gap closure negative), which is why rows are
  always computed at the moment they are used.  When per-object catalog
  ``metadata`` is supplied (see :func:`eviction_metadata`) its columns —
  the paper's own §3.2 signals: owner popularity, owner activity, photo
  type, upload age — are appended to every row.
* **Horizon-matured labels, LRB-style.**  Each request draws one random
  resident and records its feature row.  If the object is re-accessed
  before an adaptive horizon elapses the row matures with the exact
  forward distance as its log₂ target; otherwise a time wheel matures it
  at the horizon with the ceiling label ("effectively never").  The
  horizon tracks the cache's own turnover — ``horizon_scale`` times the
  mean inter-insertion time per resident — so "longer than this" always
  means "dead at this capacity".  Labels never observe the policy's
  eviction choices directly: maturing a victim's rows with its observed
  age teaches the head that its own victims reuse quickly, a feedback
  loop that collapses it onto its own choices (measured: closure goes
  negative).
* **Training.**  :class:`OnlineReuseTrainer` refits a
  :class:`~repro.ml.tree.DecisionTreeRegressor` every ``train_interval``
  matured rows over a bounded ring buffer, then code-generates it through
  :mod:`repro.ml.fastpath` (nested-``if`` single-row twin plus the batch
  twin), so a per-candidate prediction is a ns-range tree walk.
* **Eviction.**  ``K`` candidates are drawn (seeded RNG → deterministic
  replays) from a swap-pop array.  The learned head only *overrides* the
  LRU fallback when a candidate's predicted log-distance clears
  ``theta`` — an absolute dead-confidence gate near the ceiling label.
  Below the gate the LRU head is evicted: a random resident that merely
  ranks worst among eight is usually still live, and losing live objects
  to mispredictions costs more than LRU's cheap longest-idle victims.
  Ties keep the first-scanned candidate (seeded scan order); ranking by
  oid instead systematically evicts the newest uploads (oid correlates
  with upload order — measured bias).
* **Ghost history.**  A bounded ghost list remembers the recency state of
  recent victims; a re-admitted object resumes its gap/count history
  instead of looking brand-new.  Without it a mispredicted hot object is
  re-admitted as a fresh unknown, mispredicted again, and churns forever.
* **Fallback & filter.**  Until the head is trained — and whenever its
  training error degrades past ``max_error`` — the policy is *bit-
  identical* to plain LRU (property-tested).  Just-admitted objects (the
  last ``protect_recent`` insertions) are never chosen by the sampled
  ranking; if every candidate is protected or below the gate the LRU
  victim is used.
* **Observability.**  Eviction decisions are counted by mode
  (``learned`` / ``fallback`` / ``protected`` skips), and re-admission of
  an object the learned head previously evicted raises
  :attr:`LearnedCache.last_insert_was_churn` so
  :class:`~repro.cluster.node.CacheNode` can attribute the write to the
  ``eviction_churn`` ledger cause.

The policy declines :meth:`~repro.cache.base.CachePolicy.can_batch_hits`
— its hit-side transition feeds the training stream, so hits must replay
one by one; ``simulate(use_segments=True)`` therefore stays on the exact
per-request loop (parity-tested).
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict, deque
from math import log2

import numpy as np

from repro.cache.base import AccessResult, CachePolicy
from repro.ml.fastpath import fast_predictor
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["LearnedCache", "OnlineReuseTrainer", "eviction_metadata"]

_HIT = AccessResult(hit=True)

#: Feature-space cap for unknown/huge gaps, and the horizon-matured label
#: ceiling (log₂ of requests): 2^26 ≈ 67M requests is beyond any replay.
_LOG_CAP = 26.0

#: Pending feature rows kept per resident awaiting a label; more adds
#: nothing once the row's idle-age feature stops changing materially.
_MAX_PENDING = 3

#: Stream features every row carries (idle, gap, size, count, overshoot).
_N_STREAM_FEATURES = 5


def eviction_metadata(trace) -> list[tuple[float, ...]]:
    """Per-object catalog features for :class:`LearnedCache`, from a trace.

    Returns one tuple per object id — the paper's §3.2 metadata signals,
    all fair to compute online at decision time: log owner average views,
    log owner active friends, photo type, and log pre-trace upload age
    (0 for objects uploaded during the trace).  ``make_policy("learned",
    cap, trace)`` threads this in automatically.
    """
    cat = trace.catalog
    cols = np.column_stack(
        [
            np.log1p(trace.owner_avg_views[cat["owner_id"]]),
            np.log1p(trace.owner_active_friends[cat["owner_id"]]),
            cat["photo_type"].astype(np.float64),
            np.log1p(np.maximum(0.0, -cat["upload_time"])),
        ]
    )
    return [tuple(row) for row in cols]


class OnlineReuseTrainer:
    """Bounded ring of matured reuse-distance rows + periodic refits.

    ``add(row, label)`` appends one matured sample; every
    ``train_interval`` additions (once ``min_train`` rows exist) the tree
    is refit on the newest ``buffer_size`` rows and compiled.  ``ready``
    is the confidence gate: True only when a head is fitted *and* its
    training MAE (in log₂-requests) stayed under ``max_error``.
    """

    def __init__(
        self,
        *,
        n_features: int = _N_STREAM_FEATURES,
        train_interval: int = 1_000,
        buffer_size: int = 32_000,
        min_train: int = 512,
        max_error: float = 6.0,
        max_splits: int = 128,
        min_samples_leaf: int = 16,
        bins: int | None = 64,
    ):
        if train_interval < 1:
            raise ValueError("train_interval must be >= 1")
        if buffer_size < min_train:
            raise ValueError("buffer_size must be >= min_train")
        self.n_features = n_features
        self.train_interval = train_interval
        self.buffer_size = buffer_size
        self.min_train = min_train
        self.max_error = max_error
        self.max_splits = max_splits
        self.min_samples_leaf = min_samples_leaf
        self.bins = bins

        self._rows: list[tuple] = []
        self._labels: list[float] = []
        self._since_fit = 0
        self.fits = 0
        self.matured = 0
        self.train_mae = float("inf")
        self.model: DecisionTreeRegressor | None = None
        self.predict_one = None  # compiled scalar head, None until fitted

    @property
    def ready(self) -> bool:
        """Head fitted and confident enough to outrank the LRU fallback."""
        return self.predict_one is not None and self.train_mae <= self.max_error

    def add(self, row: tuple, label: float) -> bool:
        """Record one matured sample; returns True when a refit happened."""
        self._rows.append(row)
        self._labels.append(label)
        self.matured += 1
        self._since_fit += 1
        if len(self._rows) > 2 * self.buffer_size:
            # Amortised trim: keep the newest window, drop the rest at once.
            del self._rows[: -self.buffer_size]
            del self._labels[: -self.buffer_size]
        if self._since_fit >= self.train_interval and len(self._rows) >= self.min_train:
            self._fit()
            return True
        return False

    def _fit(self) -> None:
        X = np.asarray(self._rows[-self.buffer_size :], dtype=np.float64)
        y = np.asarray(self._labels[-self.buffer_size :], dtype=np.float64)
        model = DecisionTreeRegressor(
            max_splits=self.max_splits,
            min_samples_leaf=self.min_samples_leaf,
            bins=self.bins,
        )
        model.fit(X, y)
        pred = model.predict(X)
        self.train_mae = float(np.mean(np.abs(pred - y)))
        self.model = model
        self.predict_one = fast_predictor(model).predict_one
        self.fits += 1
        self._since_fit = 0

    def reset(self) -> None:
        self._rows.clear()
        self._labels.clear()
        self._since_fit = 0
        self.fits = 0
        self.matured = 0
        self.train_mae = float("inf")
        self.model = None
        self.predict_one = None


class LearnedCache(CachePolicy):
    """Sampled-candidate learned eviction over an LRU substrate.

    Constructible from a capacity alone (the policy-registry contract) —
    rows then carry only the five stream features; passing ``metadata``
    (see :func:`eviction_metadata`) appends per-object catalog columns.
    All randomness flows from ``seed``, so a replay of the same trace is
    bit-reproducible.

    Parameters
    ----------
    metadata:
        Optional sequence indexed by object id of per-object feature
        tuples appended to every row.  ``make_policy("learned", cap,
        trace)`` supplies :func:`eviction_metadata`.
    sample_size:
        Candidates ``K`` drawn per eviction (MAT uses a handful; 8 keeps
        the decision comfortably under the 2 µs budget).
    protect_recent:
        The most recent this-many *insertions* are off-limits to the
        sampled ranking — a just-admitted object never pays for the
        admission filter's optimism with an instant learned eviction.
    theta:
        Absolute dead-confidence gate (log₂ requests): a sampled
        candidate only overrides the LRU fallback when its predicted
        forward distance is at least this close to the ceiling label.
    horizon_scale:
        Multiple of the cache's mean per-resident inter-insertion time
        after which an unlabelled training row matures at the ceiling.
    trainer:
        An :class:`OnlineReuseTrainer`; defaults to one sized to the
        feature layout.  Pass ``train_interval`` large (or a never-
        ``ready`` trainer) to pin the policy to its LRU fallback.
    timing:
        When True, each eviction *decision* (victim selection only, not
        the dict surgery) is timed with ``perf_counter`` into
        ``decision_seconds``/``decisions`` — the bench's overhead probe.
        Off by default so simulations pay zero clock cost.
    """

    #: Bound on the ghost list (victim history for feature restoration and
    #: churn attribution); oldest entries age out first.
    GHOST_MEMORY = 8_192

    #: Floor on the maturation horizon (requests): below this the cache is
    #: still cold and labels would mature before the model can matter.
    MIN_HORIZON = 256

    def __init__(
        self,
        capacity_bytes: int,
        *,
        metadata=None,
        sample_size: int = 8,
        protect_recent: int = 8,
        theta: float = 24.0,
        horizon_scale: float = 2.0,
        trainer: OnlineReuseTrainer | None = None,
        seed: int = 0x5EED,
        timing: bool = False,
    ):
        super().__init__(capacity_bytes)
        if sample_size < 1:
            raise ValueError("sample_size must be >= 1")
        if protect_recent < 0:
            raise ValueError("protect_recent must be >= 0")
        if horizon_scale <= 0:
            raise ValueError("horizon_scale must be positive")
        self.metadata = metadata
        self.sample_size = sample_size
        self.protect_recent = protect_recent
        self.theta = theta
        self.horizon_scale = horizon_scale
        n_meta = len(metadata[0]) if metadata is not None and len(metadata) else 0
        self.trainer = (
            trainer
            if trainer is not None
            else OnlineReuseTrainer(n_features=_N_STREAM_FEATURES + n_meta)
        )
        self.seed = seed
        self.timing = bool(timing)
        self._rng = random.Random(seed)

        # Residency: recency order (fallback victim + LRU bookkeeping),
        # swap-pop array for O(1) uniform sampling (training + candidates).
        self._recency: OrderedDict[int, int] = OrderedDict()  # oid -> size
        self._arr: list[int] = []
        self._pos: dict[int, int] = {}
        self._used = 0

        # Per-resident model state: [last_clock, gap_log, count, insert_seq]
        # where gap_log is the log of the last inter-access gap (_LOG_CAP
        # sentinel until a second access is seen).
        self._meta: dict[int, list] = {}
        # Training rows awaiting labels: oid -> [[row, sampled_at, done]].
        # The time wheel holds (due_clock, oid, entry) in due order; an
        # entry matures once — at re-access with the true distance, or at
        # its horizon with the ceiling label, whichever comes first.
        self._pending: dict[int, list] = {}
        self._wheel: deque = deque()
        self._clock = 0
        self._inserts = 0

        # Ghost list: recency state of recent victims, keyed by oid; value
        # [last_clock, gap_log, count, learned?].  Re-admission resumes
        # this history (churn fix) and flags learned-eviction churn.
        self._ghosts: OrderedDict[int, list] = OrderedDict()
        #: True iff the most recent insertion re-admitted an object the
        #: learned head had evicted (read by the cluster node's ledger).
        self.last_insert_was_churn = False

        # Memoised head verdicts: oid -> (last_clock_at_prediction,
        # idle_at_prediction, predicted_distance).  A verdict is reusable
        # while the object has not been touched since (``last`` matches):
        # a *dead* verdict only gets deader as idle grows, and a *live*
        # verdict is trusted until the idle age has doubled.  Entries are
        # dropped on eviction; touches invalidate implicitly via ``last``.
        self._verdicts: dict[int, tuple] = {}

        # Decision counters (the observability surface).
        self.learned_evictions = 0
        self.fallback_evictions = 0
        self.protected_skips = 0
        self.churn_inserts = 0
        self.decisions = 0
        self.decision_seconds = 0.0
        #: Optional per-eviction log of ``(victim, mode)`` tuples, enabled
        #: by tests via ``debug_log = []``.
        self.debug_log: list | None = None

    # ---------------------------------------------------------- bookkeeping

    def _feature_row(self, meta: list, size: int, t: int, oid: int) -> tuple:
        """Decision-time features; metadata columns appended when present."""
        idle = log2(1.0 + (t - meta[0]))
        row = (
            idle,
            meta[1],
            log2(float(size)),
            log2(1.0 + meta[2]),
            idle - meta[1],
        )
        if self.metadata is not None:
            return row + tuple(self.metadata[oid])
        return row

    def _horizon(self, t: int) -> int:
        """Requests until an unlabelled row matures at the ceiling."""
        if self._inserts == 0:
            return self.MIN_HORIZON
        scaled = int(
            self.horizon_scale * len(self._recency) * (t + 1) / self._inserts
        )
        return scaled if scaled > self.MIN_HORIZON else self.MIN_HORIZON

    def _draw_training_sample(self, t: int) -> None:
        """Record one random resident's feature row for later maturation."""
        arr = self._arr
        if not arr:
            return
        oid = arr[self._rng.randrange(len(arr))]
        pend = self._pending.get(oid)
        if pend is None:
            pend = self._pending[oid] = []
        elif len(pend) >= _MAX_PENDING:
            return
        entry = [self._feature_row(self._meta[oid], self._recency[oid], t, oid), t, False]
        pend.append(entry)
        self._wheel.append((t + self._horizon(t), oid, entry))

    def _spin_wheel(self, t: int) -> None:
        """Mature every overdue row at the ceiling label."""
        wheel = self._wheel
        if not wheel or wheel[0][0] > t:
            return
        add = self.trainer.add
        pending = self._pending
        while wheel and wheel[0][0] <= t:
            _due, oid, entry = wheel.popleft()
            if entry[2]:
                continue
            entry[2] = True
            add(entry[0], _LOG_CAP)
            pend = pending.get(oid)
            if pend is not None:
                try:
                    pend.remove(entry)
                except ValueError:
                    pass
                if not pend:
                    del pending[oid]

    def _mature(self, oid: int, t: int) -> None:
        """Label ``oid``'s pending rows with the now-known forward distance."""
        pend = self._pending.pop(oid, None)
        if pend:
            add = self.trainer.add
            for entry in pend:
                if not entry[2]:
                    entry[2] = True
                    add(entry[0], log2(1.0 + (t - entry[1])))

    def _touch(self, oid: int, size: int, t: int) -> None:
        """Hit-side transition: recency, labels, gap/count history."""
        self._recency.move_to_end(oid)
        self._mature(oid, t)
        meta = self._meta[oid]
        gap = t - meta[0]
        meta[0] = t
        meta[1] = log2(1.0 + gap)
        meta[2] += 1

    def _admit(self, oid: int, size: int, t: int) -> None:
        """Insert a new resident, resuming ghost history when present."""
        self._recency[oid] = size
        self._pos[oid] = len(self._arr)
        self._arr.append(oid)
        self._used += size
        self._inserts += 1
        ghost = self._ghosts.pop(oid, None)
        if ghost is not None:
            # The object was here before: its re-admission proves a reuse
            # distance, so resume the gap/count history instead of letting
            # a mispredicted hot object look brand-new (and churn forever).
            gap = t - ghost[0]
            self._meta[oid] = [t, log2(1.0 + gap), ghost[2] + 1, self._inserts]
            self.last_insert_was_churn = bool(ghost[3])
            if ghost[3]:
                self.churn_inserts += 1
        else:
            self._meta[oid] = [t, _LOG_CAP, 1, self._inserts]
            self.last_insert_was_churn = False

    def _drop(self, oid: int, *, learned: bool) -> int:
        """Remove a resident and record its ghost entry.

        The victim's unmatured rows are left on the time wheel: they
        mature at their horizon with the ceiling label, never with the
        eviction's observed age (the feedback loop the module docstring
        describes).
        """
        size = self._recency.pop(oid)
        i = self._pos.pop(oid)
        tail = self._arr.pop()
        if tail != oid:
            self._arr[i] = tail
            self._pos[tail] = i
        self._used -= size
        meta = self._meta.pop(oid)
        self._pending.pop(oid, None)
        self._verdicts.pop(oid, None)
        self._ghosts[oid] = [meta[0], meta[1], meta[2], learned]
        if len(self._ghosts) > self.GHOST_MEMORY:
            self._ghosts.popitem(last=False)
        return size

    # ------------------------------------------------------- victim choice

    def _pick_victim(self, t: int) -> tuple[int, bool]:
        """Choose the next eviction victim; returns ``(oid, learned?)``."""
        trainer = self.trainer
        lru_head = next(iter(self._recency))
        if not trainer.ready:
            return lru_head, False
        arr = self._arr
        n = len(arr)
        k = self.sample_size if self.sample_size < n else n
        predict = trainer.predict_one
        meta = self._meta
        sizes = self._recency
        theta = self.theta
        protect_floor = self._inserts - self.protect_recent
        rand = self._rng.random
        feature_row = self._feature_row
        verdicts = self._verdicts

        best_oid = -1
        best: float | None = None
        for _ in range(k):
            oid = arr[int(rand() * n)]
            m = meta[oid]
            if m[3] > protect_floor:
                self.protected_skips += 1
                continue
            last = m[0]
            cached = verdicts.get(oid)
            if cached is not None and cached[0] == last:
                pred = cached[2]
                if pred >= theta:
                    # A dead verdict only gets deader as idle grows: the
                    # idle-age feature is monotone in the forward-distance
                    # direction, so rank on the memoised prediction.
                    if best is None or pred > best:
                        best = pred
                        best_oid = oid
                    continue
                if t - last < 2.0 * cached[1]:
                    # Judged live and its idle age hasn't doubled since:
                    # the verdict can't have flipped past theta yet.
                    continue
            pred = predict(feature_row(m, sizes[oid], t, oid))
            verdicts[oid] = (last, t - last, pred)
            if pred < theta:
                # Not confidently dead: never trade the cheap longest-idle
                # fallback victim for a merely-worst-of-K live object.
                continue
            # Strict > keeps the first-scanned candidate on plateau ties
            # (seeded scan order); ranking ties by oid would bias toward
            # the newest uploads.
            if best is None or pred > best:
                best = pred
                best_oid = oid
        if best is None:
            return lru_head, False
        return best_oid, True

    def _evict_for(self, size: int, t: int) -> list[int]:
        """Evict until ``size`` fits; returns victims in eviction order."""
        evicted: list[int] = []
        timing = self.timing
        while self._used + size > self.capacity:
            if timing:
                t0 = time.perf_counter()
                victim, learned = self._pick_victim(t)
                self.decision_seconds += time.perf_counter() - t0
            else:
                victim, learned = self._pick_victim(t)
            self.decisions += 1
            if learned:
                self.learned_evictions += 1
            else:
                self.fallback_evictions += 1
            if self.debug_log is not None:
                self.debug_log.append((victim, "learned" if learned else "fallback"))
            self._drop(victim, learned=learned)
            evicted.append(victim)
        return evicted

    # -------------------------------------------------------------- access

    def access_if_present(self, oid: int, size: int) -> AccessResult | None:
        self._validate_request(size)
        if oid not in self._recency:
            return None
        t = self._clock
        self._clock = t + 1
        self._spin_wheel(t)
        self._touch(oid, size, t)
        self._draw_training_sample(t)
        return _HIT

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        t = self._clock
        self._clock = t + 1
        self._spin_wheel(t)
        if oid in self._recency:
            self._touch(oid, size, t)
            self._draw_training_sample(t)
            return _HIT
        self._draw_training_sample(t)
        if not admit or size > self.capacity:
            return AccessResult(hit=False)
        evicted = self._evict_for(size, t)
        self._admit(oid, size, t)
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    # ------------------------------------------------------------- queries

    def is_protected(self, oid: int) -> bool:
        """True while ``oid`` is within the protected-admission window."""
        meta = self._meta.get(oid)
        return meta is not None and meta[3] > self._inserts - self.protect_recent

    def decision_stats(self) -> dict:
        """Eviction-decision counters for reports and metric mirrors."""
        return {
            "decisions": self.decisions,
            "learned_evictions": self.learned_evictions,
            "fallback_evictions": self.fallback_evictions,
            "protected_skips": self.protected_skips,
            "churn_inserts": self.churn_inserts,
            "fits": self.trainer.fits,
            "matured_samples": self.trainer.matured,
            "train_mae": self.trainer.train_mae,
            "decision_seconds": self.decision_seconds,
            "mean_decision_ns": (
                1e9 * self.decision_seconds / self.decisions
                if self.decisions and self.timing
                else None
            ),
        }

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._recency

    def __len__(self) -> int:
        return len(self._recency)
