"""Trace-driven cache simulation with a pluggable admission filter.

This is the measurement loop behind Figures 2 and 6–10: it replays a
:class:`~repro.trace.records.Trace` against one
:class:`~repro.cache.base.CachePolicy`, asking an optional
:class:`~repro.cache.base.AdmissionPolicy` on every miss whether the object
should be written to the SSD (the paper's Fig.-4 workflow), and accumulates
:class:`~repro.cache.base.CacheStats`.

The per-access loop is deliberately lean Python (locals bound outside the
loop, one dict lookup per access in the common case) — profiling puts it at
≈1–2 µs/access for LRU, which keeps the full benchmark grid tractable.  On
top of that, ``use_segments=True`` (the default) routes *guaranteed-hit*
runs nominated by a :class:`~repro.cache.segments.SegmentPlan` through the
policy's vectorised :meth:`~repro.cache.base.CachePolicy.access_batch`,
skipping the per-request loop entirely where no admission decision or
eviction can alter observable state.  Segmenting is bit-exact — same hit/
miss/write/eviction sequence as the loop — and ``use_segments=False``
restores the original path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cache.arc import ARCCache
from repro.cache.base import AdmissionPolicy, CacheObserver, CachePolicy, CacheStats
from repro.cache.belady import BeladyCache, compute_next_use
from repro.cache.fifo import FIFOCache
from repro.cache.gdsf import GDSFCache
from repro.cache.hierarchy import HierarchicalCache
from repro.cache.learned import LearnedCache, eviction_metadata
from repro.cache.lfu import LFUCache
from repro.cache.lirs import LIRSCache
from repro.cache.lru import LRUCache
from repro.cache.segments import SegmentPlan
from repro.cache.sieve import SieveCache
from repro.cache.slru import S3LRUCache
from repro.cache.staging import StagingCache
from repro.cache.twoq import TwoQCache
from repro.trace.records import Trace

__all__ = [
    "SimulationResult",
    "simulate",
    "make_policy",
    "POLICY_REGISTRY",
    "MIN_SEGMENT_COVERAGE",
]

#: After this many failed batch attempts inside one candidate run (each one
#: separated by a single slow-path request), the rest of the run is handed
#: back to the loop — bounds the retry overhead on adversarial streams.
_MAX_STALLS = 2

#: Below this candidate-run coverage the segmented replay cannot pay for
#: its per-region bookkeeping (measured break-even is ~8–10 % on the paper
#: workload), so ``simulate`` silently stays on the per-request loop.
#: Passing an explicit ``segment_plan`` bypasses the gate — the caller has
#: opted in (as the parity tests do on purpose-built tiny traces).
MIN_SEGMENT_COVERAGE = 0.10

#: Online policies constructible from a capacity alone.
POLICY_REGISTRY: dict[str, Callable[[int], CachePolicy]] = {
    "lru": LRUCache,
    "fifo": FIFOCache,
    "lfu": LFUCache,
    "s3lru": S3LRUCache,
    "arc": ARCCache,
    "lirs": LIRSCache,
    "2q": TwoQCache,
    "gdsf": GDSFCache,
    "sieve": SieveCache,
    "learned": LearnedCache,
    # Two-level layouts (DRAM front + LRU flash tier): "hierarchy" admits
    # at miss time, "staging" makes objects earn the flash write via
    # Flashield-style re-access evidence while staged in DRAM.
    "hierarchy": HierarchicalCache.for_capacity,
    "staging": StagingCache.for_capacity,
}


def make_policy(name: str, capacity_bytes: int, trace: Trace | None = None) -> CachePolicy:
    """Build a policy by name; ``"belady"`` needs the trace for its oracle."""
    key = name.lower()
    if key == "belady":
        if trace is None:
            raise ValueError("belady requires the trace to precompute next uses")
        return BeladyCache(capacity_bytes, compute_next_use(trace.object_ids))
    if key == "learned" and trace is not None:
        # The learned head is better with the catalog's metadata columns;
        # capacity-only construction (the registry contract) still works
        # with pure stream features.
        return LearnedCache(capacity_bytes, metadata=eviction_metadata(trace))
    try:
        return POLICY_REGISTRY[key](capacity_bytes)
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from "
            f"{sorted(POLICY_REGISTRY) + ['belady']}"
        ) from None


@dataclass
class SimulationResult:
    """Stats plus identifying metadata for one simulation run."""

    policy: str
    capacity_bytes: int
    stats: CacheStats
    admission: str = "always"

    # Convenience pass-throughs used by the figure benchmarks.
    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    @property
    def byte_hit_rate(self) -> float:
        return self.stats.byte_hit_rate

    @property
    def file_write_rate(self) -> float:
        return self.stats.file_write_rate

    @property
    def byte_write_rate(self) -> float:
        return self.stats.byte_write_rate


def _notify(observer: CacheObserver, oid: int, size: int, result) -> None:
    """Deliver one access's mutations: evictions first, then the insert.

    Eviction-before-insert matters for the device model — the freed pages
    must be TRIMmed (and reusable) before the incoming object claims space.
    """
    for victim in result.evicted:
        observer.on_evict(victim)
    if result.inserted:
        observer.on_insert(oid, size)


def simulate(
    trace: Trace,
    policy: CachePolicy,
    *,
    admission: AdmissionPolicy | None = None,
    observer: CacheObserver | None = None,
    warmup_fraction: float = 0.0,
    policy_name: str | None = None,
    use_segments: bool = True,
    segment_plan: SegmentPlan | None = None,
) -> SimulationResult:
    """Replay ``trace`` through ``policy`` and return the measured stats.

    ``observer``, when given, receives every insertion/eviction — the hook
    used to drive the SSD device model (:mod:`repro.ssd.cache_device`).

    ``warmup_fraction`` excludes the first fraction of requests from the
    *statistics* (the cache still processes them), removing cold-start
    compulsory misses from the measurement — standard practice when
    comparing steady-state behaviour.  The paper measures the whole trace,
    so the default is 0.

    ``use_segments`` (default on) batches candidate guaranteed-hit runs
    through :meth:`~repro.cache.base.CachePolicy.access_batch` for policies
    advertising :meth:`~repro.cache.base.CachePolicy.can_batch_hits`; the
    result is bit-identical to the loop, just faster on hit-dominated
    replays.  Segmenting engages only when the plan's candidate runs cover
    at least :data:`MIN_SEGMENT_COVERAGE` of the trace (below that the
    bookkeeping wouldn't pay for itself).  Pass ``use_segments=False`` for
    the original per-request path (useful for parity checks and
    micro-benchmarks), or ``segment_plan`` to reuse a prebuilt
    :class:`~repro.cache.segments.SegmentPlan` — an explicit plan also
    bypasses the coverage gate.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    stats = CacheStats()
    if admission is not None:
        admission.reset()

    n = trace.n_accesses
    warm_start = int(warmup_fraction * n)

    batches = None
    plan = None
    if use_segments and policy.can_batch_hits():
        plan = segment_plan if segment_plan is not None else SegmentPlan.for_trace(trace)
        if (
            segment_plan is not None
            or plan.coverage(policy.capacity) >= MIN_SEGMENT_COVERAGE
        ):
            batches = plan.batches(policy.capacity)

    if batches:
        # Segment-batching replay: it materialises only the trace regions
        # the per-request path actually walks (the full-trace tolist below
        # is itself ~10 % of a hit-dominated replay).
        _simulate_segmented(
            policy, admission, observer, stats, trace, plan, warm_start, batches
        )
        return SimulationResult(
            policy=policy_name or type(policy).__name__,
            capacity_bytes=policy.capacity,
            stats=stats,
            admission=type(admission).__name__ if admission is not None else "always",
        )

    object_ids = trace.object_ids
    sizes = trace.catalog["size"][object_ids]
    # Plain int lists iterate ~2× faster than NumPy scalars in this loop.
    oid_list = object_ids.tolist()
    size_list = sizes.tolist()

    access = policy.access
    record = stats.record
    # The original per-request loops, untouched: with segments off (or
    # never engaging) behaviour is bit-for-bit the pre-segment path.
    if admission is None:
        for i, oid in enumerate(oid_list):
            result = access(oid, size_list[i])
            if i >= warm_start:
                record(size_list[i], result, False)
            if observer is not None and (result.inserted or result.evicted):
                _notify(observer, oid, size_list[i], result)
    else:
        should_admit = admission.should_admit
        on_hit = admission.on_hit
        # access_if_present folds the membership probe into the hit-side
        # update (one hash lookup for LRU/FIFO instead of the previous
        # `oid in policy` + `access(oid, ...)` pair re-hashing the key).
        access_if_present = policy.access_if_present
        for i, oid in enumerate(oid_list):
            size = size_list[i]
            result = access_if_present(oid, size)
            if result is not None:
                on_hit(i, oid, size)
                denied = False
            else:
                ok = should_admit(i, oid, size)
                result = access(oid, size, admit=ok)
                denied = not ok
            if i >= warm_start:
                record(size, result, denied)
            if observer is not None and (result.inserted or result.evicted):
                _notify(observer, oid, size, result)

    return SimulationResult(
        policy=policy_name or type(policy).__name__,
        capacity_bytes=policy.capacity,
        stats=stats,
        admission=type(admission).__name__ if admission is not None else "always",
    )


def _simulate_segmented(
    policy: CachePolicy,
    admission: AdmissionPolicy | None,
    observer: CacheObserver | None,
    stats: CacheStats,
    trace: Trace,
    plan: SegmentPlan,
    warm_start: int,
    batches,
) -> None:
    """The segment-batching replay: loop between runs, batch inside them.

    Semantics contract (checked by the parity suite): the hit/miss/write/
    eviction sequence, the admission callback sequence, and the resulting
    :class:`CacheStats` are bit-identical to the per-request loops above.

    Trace columns are materialised lazily, region by region: batched runs
    never need Python ints (the policy works off the precomputed distinct
    list), so only the slow regions pay the ndarray→list conversion.
    """
    oid_arr = trace.object_ids
    size_arr = trace.catalog["size"][oid_arr]
    n = oid_arr.shape[0]
    prefix = plan.prefix_bytes
    record = stats.record
    access = policy.access
    access_batch = policy.access_batch
    if admission is not None:
        should_admit = admission.should_admit
        on_hit = admission.on_hit
        access_if_present = policy.access_if_present
        # The per-hit callback is only replayed when actually overridden —
        # every stock grid admission (AlwaysAdmit/Oracle/Classifier) uses
        # the base no-op, so batched hits cost nothing there.
        batch_on_hit = type(admission).on_hit is not AdmissionPolicy.on_hit
    else:
        batch_on_hit = False

    def slow(lo: int, hi: int) -> None:
        """The exact per-request path over trace positions [lo, hi)."""
        oid_l = oid_arr[lo:hi].tolist()
        size_l = size_arr[lo:hi].tolist()
        if admission is None:
            for k, oid in enumerate(oid_l):
                size = size_l[k]
                result = access(oid, size)
                if lo + k >= warm_start:
                    record(size, result, False)
                if observer is not None and (result.inserted or result.evicted):
                    _notify(observer, oid, size, result)
        else:
            for k, oid in enumerate(oid_l):
                i = lo + k
                size = size_l[k]
                result = access_if_present(oid, size)
                if result is not None:
                    on_hit(i, oid, size)
                    denied = False
                else:
                    ok = should_admit(i, oid, size)
                    result = access(oid, size, admit=ok)
                    denied = not ok
                if i >= warm_start:
                    record(size, result, denied)
                if observer is not None and (result.inserted or result.evicted):
                    _notify(observer, oid, size, result)

    pos = 0
    for s, e, distinct in batches:
        # Split runs at the warmup boundary so every batch is entirely
        # counted or entirely warmup — keeping eviction attribution
        # identical to the loop, which credits an eviction to the request
        # that triggered it.  The precomputed dedup covers the whole run,
        # so the (rare) straddling halves use the exact loop instead.
        if s < warm_start < e:
            spans = ((s, warm_start, None), (warm_start, e, None))
        else:
            spans = ((s, e, distinct),)
        for s2, e2, d2 in spans:
            if pos < s2:
                slow(pos, s2)
                pos = s2
            stalls = 0
            while pos < e2:
                consumed, evicted = access_batch(
                    oid_arr[pos:e2],
                    size_arr[pos:e2],
                    d2 if pos == s2 else None,
                )
                if consumed:
                    end = pos + consumed
                    if pos >= warm_start:
                        nbytes = int(prefix[end] - prefix[pos])
                        stats.requests += consumed
                        stats.hits += consumed
                        stats.bytes_requested += nbytes
                        stats.bytes_hit += nbytes
                        stats.evictions += len(evicted)
                    if batch_on_hit:
                        oid_l = oid_arr[pos:end].tolist()
                        size_l = size_arr[pos:end].tolist()
                        for k, oid in enumerate(oid_l):
                            on_hit(pos + k, oid, size_l[k])
                    if observer is not None:
                        for victim in evicted:
                            observer.on_evict(victim)
                    pos = end
                if pos >= e2:
                    break
                # The next request is not a batchable hit (miss, denied-
                # then-re-accessed object, or a mid-run eviction): run it
                # through the exact path, then retry the remainder a
                # bounded number of times before conceding the run.
                stalls += 1
                if stalls > _MAX_STALLS:
                    slow(pos, e2)
                    pos = e2
                    break
                slow(pos, pos + 1)
                pos += 1
    if pos < n:
        slow(pos, n)
