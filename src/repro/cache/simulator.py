"""Trace-driven cache simulation with a pluggable admission filter.

This is the measurement loop behind Figures 2 and 6–10: it replays a
:class:`~repro.trace.records.Trace` against one
:class:`~repro.cache.base.CachePolicy`, asking an optional
:class:`~repro.cache.base.AdmissionPolicy` on every miss whether the object
should be written to the SSD (the paper's Fig.-4 workflow), and accumulates
:class:`~repro.cache.base.CacheStats`.

The per-access loop is deliberately lean Python (locals bound outside the
loop, one dict lookup per access in the common case) — profiling puts it at
≈1–2 µs/access for LRU, which keeps the full benchmark grid tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cache.arc import ARCCache
from repro.cache.base import AdmissionPolicy, CacheObserver, CachePolicy, CacheStats
from repro.cache.belady import BeladyCache, compute_next_use
from repro.cache.fifo import FIFOCache
from repro.cache.gdsf import GDSFCache
from repro.cache.lfu import LFUCache
from repro.cache.lirs import LIRSCache
from repro.cache.lru import LRUCache
from repro.cache.sieve import SieveCache
from repro.cache.slru import S3LRUCache
from repro.cache.twoq import TwoQCache
from repro.trace.records import Trace

__all__ = ["SimulationResult", "simulate", "make_policy", "POLICY_REGISTRY"]

#: Online policies constructible from a capacity alone.
POLICY_REGISTRY: dict[str, Callable[[int], CachePolicy]] = {
    "lru": LRUCache,
    "fifo": FIFOCache,
    "lfu": LFUCache,
    "s3lru": S3LRUCache,
    "arc": ARCCache,
    "lirs": LIRSCache,
    "2q": TwoQCache,
    "gdsf": GDSFCache,
    "sieve": SieveCache,
}


def make_policy(name: str, capacity_bytes: int, trace: Trace | None = None) -> CachePolicy:
    """Build a policy by name; ``"belady"`` needs the trace for its oracle."""
    key = name.lower()
    if key == "belady":
        if trace is None:
            raise ValueError("belady requires the trace to precompute next uses")
        return BeladyCache(capacity_bytes, compute_next_use(trace.object_ids))
    try:
        return POLICY_REGISTRY[key](capacity_bytes)
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from "
            f"{sorted(POLICY_REGISTRY) + ['belady']}"
        ) from None


@dataclass
class SimulationResult:
    """Stats plus identifying metadata for one simulation run."""

    policy: str
    capacity_bytes: int
    stats: CacheStats
    admission: str = "always"

    # Convenience pass-throughs used by the figure benchmarks.
    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate

    @property
    def byte_hit_rate(self) -> float:
        return self.stats.byte_hit_rate

    @property
    def file_write_rate(self) -> float:
        return self.stats.file_write_rate

    @property
    def byte_write_rate(self) -> float:
        return self.stats.byte_write_rate


def _notify(observer: CacheObserver, oid: int, size: int, result) -> None:
    """Deliver one access's mutations: evictions first, then the insert.

    Eviction-before-insert matters for the device model — the freed pages
    must be TRIMmed (and reusable) before the incoming object claims space.
    """
    for victim in result.evicted:
        observer.on_evict(victim)
    if result.inserted:
        observer.on_insert(oid, size)


def simulate(
    trace: Trace,
    policy: CachePolicy,
    *,
    admission: AdmissionPolicy | None = None,
    observer: CacheObserver | None = None,
    warmup_fraction: float = 0.0,
    policy_name: str | None = None,
) -> SimulationResult:
    """Replay ``trace`` through ``policy`` and return the measured stats.

    ``observer``, when given, receives every insertion/eviction — the hook
    used to drive the SSD device model (:mod:`repro.ssd.cache_device`).

    ``warmup_fraction`` excludes the first fraction of requests from the
    *statistics* (the cache still processes them), removing cold-start
    compulsory misses from the measurement — standard practice when
    comparing steady-state behaviour.  The paper measures the whole trace,
    so the default is 0.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    stats = CacheStats()
    if admission is not None:
        admission.reset()

    object_ids = trace.object_ids
    sizes = trace.catalog["size"][object_ids]
    # Plain int lists iterate ~2× faster than NumPy scalars in this loop.
    oid_list = object_ids.tolist()
    size_list = sizes.tolist()
    warm_start = int(warmup_fraction * len(oid_list))

    access = policy.access
    record = stats.record
    if admission is None:
        for i, oid in enumerate(oid_list):
            result = access(oid, size_list[i])
            if i >= warm_start:
                record(size_list[i], result, False)
            if observer is not None and (result.inserted or result.evicted):
                _notify(observer, oid, size_list[i], result)
    else:
        should_admit = admission.should_admit
        on_hit = admission.on_hit
        # access_if_present folds the membership probe into the hit-side
        # update (one hash lookup for LRU/FIFO instead of the previous
        # `oid in policy` + `access(oid, ...)` pair re-hashing the key).
        access_if_present = policy.access_if_present
        for i, oid in enumerate(oid_list):
            size = size_list[i]
            result = access_if_present(oid, size)
            if result is not None:
                on_hit(i, oid, size)
                denied = False
            else:
                ok = should_admit(i, oid, size)
                result = access(oid, size, admit=ok)
                denied = not ok
            if i >= warm_start:
                record(size, result, denied)
            if observer is not None and (result.inserted or result.evicted):
                _notify(observer, oid, size, result)

    return SimulationResult(
        policy=policy_name or type(policy).__name__,
        capacity_bytes=policy.capacity,
        stats=stats,
        admission=type(admission).__name__ if admission is not None else "always",
    )
