"""2Q replacement (Johnson & Shasha, VLDB'94).

Not part of the paper's evaluated set, but the classic scan-resistant
design its S3LRU/ARC comparisons descend from — included for completeness
of the substrate.  Structure:

* ``A1in``  — FIFO for first-touch objects (a fraction of capacity);
* ``A1out`` — ghost FIFO remembering recently demoted first-touchers;
* ``Am``    — main LRU; entered only via an ``A1out`` ghost hit, i.e. by
  proving a second access at medium distance.

One-time objects churn through ``A1in`` without ever displacing ``Am`` —
the same pollution-control goal the paper attacks with its admission
filter, achieved structurally instead.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["TwoQCache"]


class TwoQCache(CachePolicy):
    """Size-aware 2Q.

    Parameters
    ----------
    kin:
        Fraction of capacity for the ``A1in`` FIFO (paper default 25 %).
    kout:
        Ghost capacity as a fraction of cache capacity — counted in
        *bytes of remembered objects* (paper default 50 %).
    """

    def __init__(self, capacity_bytes: int, *, kin: float = 0.25, kout: float = 0.5):
        super().__init__(capacity_bytes)
        if not 0.0 < kin < 1.0:
            raise ValueError("kin must be in (0, 1)")
        if kout <= 0:
            raise ValueError("kout must be positive")
        self._a1in: OrderedDict[int, int] = OrderedDict()
        self._a1out: OrderedDict[int, int] = OrderedDict()  # ghosts
        self._am: OrderedDict[int, int] = OrderedDict()
        self._a1in_bytes = 0
        self._a1out_bytes = 0
        self._am_bytes = 0
        self._a1in_cap = max(1, int(capacity_bytes * kin))
        self._a1out_cap = max(1, int(capacity_bytes * kout))

    # ------------------------------------------------------------ plumbing

    def _trim_ghosts(self) -> None:
        while self._a1out and self._a1out_bytes > self._a1out_cap:
            _, size = self._a1out.popitem(last=False)
            self._a1out_bytes -= size

    def _evict_for(self, size: int, evicted: list[int]) -> None:
        """Free space per the 2Q REclaimfor rule."""
        while self.used_bytes + size > self.capacity:
            if self._a1in and self._a1in_bytes > self._a1in_cap:
                oid, sz = self._a1in.popitem(last=False)
                self._a1in_bytes -= sz
                self._a1out[oid] = sz
                self._a1out_bytes += sz
                self._trim_ghosts()
            elif self._am:
                oid, sz = self._am.popitem(last=False)
                self._am_bytes -= sz
            elif self._a1in:
                oid, sz = self._a1in.popitem(last=False)
                self._a1in_bytes -= sz
                self._a1out[oid] = sz
                self._a1out_bytes += sz
                self._trim_ghosts()
            else:  # pragma: no cover - nothing resident, loop cannot run
                break
            evicted.append(oid)

    # --------------------------------------------------------------- access

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        if oid in self._am:
            self._am.move_to_end(oid)
            return AccessResult(hit=True)
        if oid in self._a1in:
            # 2Q leaves A1in order untouched on hit (correlated references).
            return AccessResult(hit=True)
        if not admit or size > self.capacity:
            return AccessResult(hit=False)

        evicted: list[int] = []
        if oid in self._a1out:
            # Second touch at medium distance: promote into Am.
            sz = self._a1out.pop(oid)
            self._a1out_bytes -= sz
            self._evict_for(size, evicted)
            self._am[oid] = size
            self._am_bytes += size
        else:
            self._evict_for(size, evicted)
            self._a1in[oid] = size
            self._a1in_bytes += size
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    # ------------------------------------------------------------ interface

    @property
    def used_bytes(self) -> int:
        return self._a1in_bytes + self._am_bytes

    def __contains__(self, oid: int) -> bool:
        return oid in self._a1in or oid in self._am

    def __len__(self) -> int:
        return len(self._a1in) + len(self._am)
