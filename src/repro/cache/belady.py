"""Belady's offline-optimal replacement (MIN) — the paper's upper bound.

Belady needs the future: for each trace position the index of the *next*
access to the same object.  :func:`compute_next_use` derives that in one
vectorised backward pass; :class:`BeladyCache` then evicts the resident
object whose next use is farthest away (never-again objects first), using a
max-heap with lazy invalidation for O(log n) per operation.

For unit-size objects this is the exact optimum (MIN); with variable sizes
the farthest-next-use greedy is the standard approximation used in cache
papers (optimal eviction with sizes is NP-hard).

By default objects with *no* future use are not inserted at all
(``bypass_dead=True``): this cannot lower the hit rate — such an object can
never produce a hit — and matches the spirit of the paper's "Ideal"
upper-bound configurations by not counting useless SSD writes.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["BeladyCache", "compute_next_use"]

_NEVER = np.iinfo(np.int64).max


def compute_next_use(object_ids: np.ndarray) -> np.ndarray:
    """For each position ``i``, the next ``j > i`` with the same object.

    Positions with no later access get ``np.iinfo(int64).max``.  Single
    vectorised pass: group positions by object, then shift within groups.
    """
    object_ids = np.ascontiguousarray(object_ids, dtype=np.int64)
    n = object_ids.shape[0]
    next_use = np.full(n, _NEVER, dtype=np.int64)
    # Stable sort by object groups equal ids together in position order.
    order = np.argsort(object_ids, kind="stable")
    sorted_ids = object_ids[order]
    same_as_next = sorted_ids[:-1] == sorted_ids[1:]
    src = order[:-1][same_as_next]      # position whose successor exists
    dst = order[1:][same_as_next]       # that successor's position
    next_use[src] = dst
    return next_use


class BeladyCache(CachePolicy):
    """Farthest-next-use eviction driven by a precomputed oracle.

    The caller must feed accesses *in trace order*; each ``access`` call
    advances an internal clock used to index ``next_use``.
    """

    def __init__(
        self,
        capacity_bytes: int,
        next_use: np.ndarray,
        *,
        bypass_dead: bool = True,
    ):
        super().__init__(capacity_bytes)
        self._next_use = np.ascontiguousarray(next_use, dtype=np.int64)
        self.bypass_dead = bypass_dead
        self._clock = 0
        self._size: dict[int, int] = {}
        self._obj_next: dict[int, int] = {}  # oid -> its next use index
        self._heap: list[tuple[int, int]] = []  # (-next_use, oid), lazy
        self._used = 0

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        if self._clock >= self._next_use.shape[0]:
            raise RuntimeError("BeladyCache ran past its oracle horizon")
        nxt = int(self._next_use[self._clock])
        self._clock += 1

        if oid in self._size:
            self._obj_next[oid] = nxt
            heapq.heappush(self._heap, (-nxt, oid))
            return AccessResult(hit=True)

        if (
            not admit
            or size > self.capacity
            or (self.bypass_dead and nxt == _NEVER)
        ):
            return AccessResult(hit=False)

        evicted = []
        while self._used + size > self.capacity:
            evicted.append(self._evict_farthest())
        self._size[oid] = size
        self._obj_next[oid] = nxt
        heapq.heappush(self._heap, (-nxt, oid))
        self._used += size
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    def _evict_farthest(self) -> int:
        while True:
            neg_next, oid = heapq.heappop(self._heap)
            # Lazy invalidation: skip stale heap entries.
            if self._obj_next.get(oid) == -neg_next and oid in self._size:
                self._used -= self._size.pop(oid)
                del self._obj_next[oid]
                return oid

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._size

    def __len__(self) -> int:
        return len(self._size)
