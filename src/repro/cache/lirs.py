"""LIRS — Low Inter-reference Recency Set (Jiang & Zhang, SIGMETRICS'02).

Size-aware implementation.  Objects are partitioned into

* **LIR** (low inter-reference recency) — resident, pinned by the stack;
* **resident HIR** — resident but first in line for eviction (queue Q);
* **non-resident HIR** — metadata-only history kept in the stack S.

The stack S orders objects by recency; its bottom is always LIR (stack
pruning).  A resident-HIR hit whose entry is still in S proves a small
inter-reference recency → the object is promoted to LIR and the stack-bottom
LIR is demoted to the queue.  Evictions take the queue front.

Capacity is split ``Cs`` bytes for LIR and the remainder for resident HIR
(``lir_fraction`` = 95 % by default, the classic 99/1 split softened for
variable object sizes).  ``rs`` exposes ``Cs/C``, the ratio the paper uses
for the LIRS one-time-access criterion ``M_LIRS = M_LRU × R_s`` (§5.2).

Non-resident history is bounded: when it outgrows ``history_factor`` × the
resident population the stack is rebuilt keeping only the most recent
entries (amortised O(1) per access).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["LIRSCache"]

_LIR = 0          # resident, protected
_HIR = 1          # resident, eviction candidate (also in Q)
_NONRES = 2       # history only


class LIRSCache(CachePolicy):
    """Size-aware LIRS."""

    def __init__(
        self,
        capacity_bytes: int,
        *,
        lir_fraction: float = 0.95,
        history_factor: int = 4,
    ):
        super().__init__(capacity_bytes)
        if not 0.0 < lir_fraction < 1.0:
            raise ValueError("lir_fraction must be in (0, 1)")
        if history_factor < 1:
            raise ValueError("history_factor must be >= 1")
        self.lir_capacity = max(1, int(capacity_bytes * lir_fraction))
        self.history_factor = history_factor
        self._stack: OrderedDict[int, int] = OrderedDict()  # oid -> state
        self._queue: OrderedDict[int, int] = OrderedDict()  # oid -> size
        self._size: dict[int, int] = {}                     # resident sizes
        self._lir_bytes = 0
        self._hir_bytes = 0
        self._n_nonres = 0

    # ---------------------------------------------------------- invariants

    @property
    def rs(self) -> float:
        """R_s = C_s / C — the stack share of capacity (§5.2)."""
        return self.lir_capacity / self.capacity

    @property
    def used_bytes(self) -> int:
        return self._lir_bytes + self._hir_bytes

    def __contains__(self, oid: int) -> bool:
        return oid in self._size

    def __len__(self) -> int:
        return len(self._size)

    # ------------------------------------------------------------ plumbing

    def _prune(self) -> None:
        """Pop non-LIR entries off the stack bottom (classic pruning)."""
        stack = self._stack
        while stack:
            oid = next(iter(stack))
            state = stack[oid]
            if state == _LIR:
                return
            del stack[oid]
            if state == _NONRES:
                self._n_nonres -= 1
            # _HIR entries stay resident in Q; they just lose history.

    def _demote_bottom_lir(self) -> None:
        """Move the stack-bottom LIR object to the queue tail as HIR."""
        # Evictions mark stack entries non-resident without pruning, so the
        # bottom may be stale here — prune first (callers guarantee a LIR
        # entry exists whenever demotion is required).
        self._prune()
        oid = next(iter(self._stack))
        assert self._stack[oid] == _LIR, "stack bottom must be LIR"
        del self._stack[oid]
        size = self._size[oid]
        self._lir_bytes -= size
        self._hir_bytes += size
        self._queue[oid] = size
        self._prune()

    def _enforce_lir_quota(self) -> None:
        while self._lir_bytes > self.lir_capacity and len(self._stack) > 1:
            self._demote_bottom_lir()

    def _evict_one(self, evicted: list[int]) -> None:
        """Evict the queue front (demoting a LIR first if Q is empty)."""
        if not self._queue:
            self._demote_bottom_lir()
        oid, size = self._queue.popitem(last=False)
        self._hir_bytes -= size
        del self._size[oid]
        if oid in self._stack:
            self._stack[oid] = _NONRES
            self._n_nonres += 1
        evicted.append(oid)

    def _make_room(self, size: int, evicted: list[int]) -> None:
        while self.used_bytes + size > self.capacity:
            self._evict_one(evicted)

    def _bound_history(self) -> None:
        limit = max(1024, self.history_factor * max(len(self._size), 1))
        if self._n_nonres <= limit:
            return
        # Rebuild the stack keeping all resident entries and the most
        # recent half of the allowed non-resident history.
        keep_nonres = limit // 2
        items = list(self._stack.items())
        nonres_positions = [i for i, (_, s) in enumerate(items) if s == _NONRES]
        drop = set(nonres_positions[: len(nonres_positions) - keep_nonres])
        self._stack = OrderedDict(
            (oid, s) for i, (oid, s) in enumerate(items) if i not in drop
        )
        self._n_nonres = len(nonres_positions) - len(drop)
        self._prune()

    # --------------------------------------------------------------- access

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        stack = self._stack
        state = stack.get(oid)

        # --- LIR hit
        if state == _LIR:
            stack.move_to_end(oid)
            self._prune()
            return AccessResult(hit=True)

        # --- resident HIR hit
        if oid in self._queue:
            sz = self._size[oid]
            if state is not None:  # in stack → small IRR → promote to LIR
                del self._queue[oid]
                self._hir_bytes -= sz
                self._lir_bytes += sz
                stack[oid] = _LIR
                stack.move_to_end(oid)
                self._enforce_lir_quota()
                self._prune()
            else:  # not in stack: refresh history, stay HIR
                self._queue.move_to_end(oid)
                stack[oid] = _HIR
                self._bound_history()
            return AccessResult(hit=True)

        # --- miss
        if not admit or size > self.capacity:
            return AccessResult(hit=False)

        evicted: list[int] = []
        self._make_room(size, evicted)
        self._size[oid] = size

        if state == _NONRES:  # recently seen → small IRR → straight to LIR
            self._n_nonres -= 1
            stack[oid] = _LIR
            stack.move_to_end(oid)
            self._lir_bytes += size
            self._enforce_lir_quota()
            self._prune()
        elif self._lir_bytes + size <= self.lir_capacity:
            # Warm-up: fill the LIR pool first (classic LIRS bootstrap).
            stack[oid] = _LIR
            stack.move_to_end(oid)
            self._lir_bytes += size
        else:
            stack[oid] = _HIR
            stack.move_to_end(oid)
            self._queue[oid] = size
            self._hir_bytes += size
        self._bound_history()
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))
