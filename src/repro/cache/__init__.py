"""Byte-accurate cache simulator substrate.

Implements every replacement policy the paper evaluates — LRU, FIFO, S3LRU,
ARC, LIRS — plus the offline-optimal Belady bound, LFU, and the wider
scan-resistance lineage (2Q, GDSF, SIEVE) for comparison, all behind one
:class:`~repro.cache.base.CachePolicy` interface.  A trace-driven
:func:`~repro.cache.simulator.simulate` loop provides the pluggable
admission filter (the hook the paper's classification system plugs into)
and an observer stream for device models;
:class:`~repro.cache.hierarchy.HierarchicalCache` composes a DRAM front
with an SSD tier.

All policies are *size-aware*: capacities, hit ratios and write ratios are
tracked in both files and bytes, matching the paper's Figures 6–9.
"""

from repro.cache.base import AccessResult, AdmissionPolicy, CachePolicy, CacheStats
from repro.cache.lru import LRUCache
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.slru import S3LRUCache
from repro.cache.arc import ARCCache
from repro.cache.twoq import TwoQCache
from repro.cache.gdsf import GDSFCache
from repro.cache.sieve import SieveCache
from repro.cache.lirs import LIRSCache
from repro.cache.belady import BeladyCache, compute_next_use
from repro.cache.hierarchy import HierarchicalCache
from repro.cache.learned import LearnedCache, OnlineReuseTrainer, eviction_metadata
from repro.cache.segments import SegmentPlan
from repro.cache.simulator import POLICY_REGISTRY, SimulationResult, make_policy, simulate
from repro.cache.staging import CounterFlashiness, FlashinessPredicate, StagingCache

__all__ = [
    "AccessResult",
    "AdmissionPolicy",
    "CachePolicy",
    "CacheStats",
    "LRUCache",
    "FIFOCache",
    "LFUCache",
    "S3LRUCache",
    "ARCCache",
    "TwoQCache",
    "GDSFCache",
    "SieveCache",
    "LIRSCache",
    "BeladyCache",
    "HierarchicalCache",
    "LearnedCache",
    "OnlineReuseTrainer",
    "compute_next_use",
    "eviction_metadata",
    "POLICY_REGISTRY",
    "SegmentPlan",
    "SimulationResult",
    "CounterFlashiness",
    "FlashinessPredicate",
    "StagingCache",
    "make_policy",
    "simulate",
]
