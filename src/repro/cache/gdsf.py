"""GDSF — Greedy-Dual-Size-Frequency (Cherkasova 1998).

A size-aware web-cache policy: priority ``L + frequency · cost / size``
(cost = 1 here), evict the minimum, and raise the global inflation clock
``L`` to the evicted priority so resident objects age.  Small, frequently
requested objects are protected — exactly the trade a photo cache wants
when optimising *file* hit rate under mixed thumbnail/original sizes.

Implemented with a heap under lazy invalidation: each priority update
pushes a fresh entry, stale ones are skipped at pop time.
"""

from __future__ import annotations

import heapq

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["GDSFCache"]


class GDSFCache(CachePolicy):
    """Greedy-Dual-Size-Frequency with unit miss cost."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._size: dict[int, int] = {}
        self._freq: dict[int, int] = {}
        self._prio: dict[int, float] = {}
        self._heap: list[tuple[float, int, int]] = []  # (prio, seq, oid)
        self._clock = 0.0
        self._seq = 0
        self._used = 0

    def _push(self, oid: int) -> None:
        prio = self._clock + self._freq[oid] / self._size[oid]
        self._prio[oid] = prio
        self._seq += 1
        heapq.heappush(self._heap, (prio, self._seq, oid))

    def _evict_one(self) -> int:
        while True:
            prio, _, oid = heapq.heappop(self._heap)
            if self._prio.get(oid) == prio and oid in self._size:
                self._clock = prio  # inflation: survivors age relatively
                self._used -= self._size.pop(oid)
                del self._freq[oid]
                del self._prio[oid]
                return oid

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        if oid in self._size:
            self._freq[oid] += 1
            self._push(oid)
            return AccessResult(hit=True)
        if not admit or size > self.capacity:
            return AccessResult(hit=False)
        evicted = []
        while self._used + size > self.capacity:
            evicted.append(self._evict_one())
        self._size[oid] = size
        self._freq[oid] = 1
        self._used += size
        self._push(oid)
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._size

    def __len__(self) -> int:
        return len(self._size)
