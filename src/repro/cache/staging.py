"""Flashield-style DRAM staging in front of the SSD tier.

The paper's admission classifier decides *at miss time* whether an object
deserves a flash write.  Flashield (Eisenman et al., NSDI'19) avoids the
same writes by a different route: every object enters DRAM first and must
*prove* "flashiness" — re-accesses while staged — before it earns the SSD
write.  :class:`StagingCache` implements that semantics on top of the
two-level layout of :class:`~repro.cache.hierarchy.HierarchicalCache`, so
the classifier, the flashiness bar, and their composition can be compared
head-to-head in one ``simulate()`` sweep:

* **classifier only** — ``HierarchicalCache`` + ``ClassifierAdmission``;
* **flashiness only** — ``StagingCache`` with always-admit;
* **composed** — ``StagingCache`` + ``ClassifierAdmission``: the verdict
  taken at miss time marks the staged object (in)eligible, and the
  flashiness bar must *also* be crossed before the write happens.

Semantics
---------
* Miss: the object enters DRAM (free) and — unless the flashiness bar is
  zero — is only *staged*: no SSD write yet.  The caller's ``admit``
  verdict is remembered as the staged object's SSD eligibility.
* DRAM hit on a staged object: one unit of re-access evidence.  When the
  evidence crosses the bar and the object is eligible, it is **promoted**:
  written to the SSD tier and reported as
  ``AccessResult(hit=True, inserted=True, ...)`` — the only situation in
  this codebase where a hit carries an insert.  :class:`CacheStats.record`
  then counts both the hit and the flash write.
* Eviction from DRAM discards the staged evidence (Flashield's semantics:
  the object must re-earn its write from scratch on its next miss).
* An SSD hit promotes into DRAM exactly as ``HierarchicalCache`` does; an
  SSD-resident object never re-enters staging while it stays in DRAM.

Two degenerate configurations anchor the differential tests:

* ``dram=None`` (zero-size staging area) — nothing can ever accrue
  evidence, so the wrapper is a transparent shell over the L2 policy.
* flashiness bar 0 — every admitted miss is written immediately, which is
  bit-identical to ``HierarchicalCache`` (always-admit through the bar).

``can_batch_hits()`` stays ``False`` **by contract**: a staged hit can
insert, and the segmented batch path (``access_batch``) can only surface
``(consumed, evicted)`` — promotions would be invisible to the stats and
the device observer.
"""

from __future__ import annotations

from repro.cache.base import AccessResult, CachePolicy
from repro.cache.lru import LRUCache

__all__ = ["CounterFlashiness", "FlashinessPredicate", "StagingCache"]


class FlashinessPredicate:
    """Decides when a staged object has earned its SSD write.

    ``should_promote`` is consulted with the re-access evidence gathered so
    far (``dram_hits`` is 0 at miss time); ``on_request`` is called exactly
    once per request *after* any ``should_promote`` for the same position,
    so learned implementations can consume features before observing.
    """

    def should_promote(self, index: int, oid: int, size: int, dram_hits: int) -> bool:
        raise NotImplementedError

    def on_request(self, index: int, oid: int, size: int) -> None:
        """Optional hook: observe the request (in trace order)."""

    def reset(self) -> None:
        """Optional hook: clear per-run state before a simulation."""


class CounterFlashiness(FlashinessPredicate):
    """Promote after ``threshold`` re-accesses while staged in DRAM.

    ``threshold=0`` is the always-admit degenerate case (write at miss
    time); ``threshold=1`` means an object must be seen twice in total
    before it touches flash.
    """

    def __init__(self, threshold: int = 1):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = int(threshold)

    def should_promote(self, index: int, oid: int, size: int, dram_hits: int) -> bool:
        return dram_hits >= self.threshold

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CounterFlashiness(threshold={self.threshold})"


class StagingCache(CachePolicy):
    """DRAM staging tier + SSD tier with a flashiness promotion bar.

    Parameters
    ----------
    dram:
        The staging policy (typically a small LRU), or ``None`` for a
        zero-size staging area (transparent shell over ``ssd``).
    ssd:
        The L2 policy whose inserts are the flash writes being avoided.
    flashiness:
        The promotion bar; defaults to ``CounterFlashiness(1)``.
    redemption_threshold:
        Optional evidence-overrides-prediction escape hatch for composing
        with an admission classifier: a staged object the caller *denied*
        at miss time is normally never written, but with this set it is
        still promoted once it shows this many DRAM re-accesses — observed
        reuse directly contradicts a one-time prediction, and the higher
        bar prices in the classifier's scepticism.  ``None`` (default)
        keeps denials absolute.

    ``capacity``/``used_bytes`` report the SSD tier, mirroring
    :class:`~repro.cache.hierarchy.HierarchicalCache`.
    """

    def __init__(
        self,
        dram: CachePolicy | None,
        ssd: CachePolicy,
        flashiness: FlashinessPredicate | None = None,
        *,
        redemption_threshold: int | None = None,
    ):
        super().__init__(ssd.capacity)
        if redemption_threshold is not None and redemption_threshold < 1:
            raise ValueError("redemption_threshold must be >= 1")
        self.dram = dram
        self.ssd = ssd
        self.flashiness = (
            flashiness if flashiness is not None else CounterFlashiness(1)
        )
        self.redemption_threshold = redemption_threshold
        self.l1_hits = 0
        self.l2_hits = 0
        # Promotions: staged objects whose bar was crossed on a DRAM hit.
        # Direct admits: bar-zero inserts performed at miss time.
        self.promotions = 0
        self.redemptions = 0
        self.direct_admits = 0
        self.staged_evicted = 0
        # oid -> [dram re-accesses while staged, SSD-eligible?].  Entries
        # exist only for DRAM-resident objects that are not on the SSD.
        self._staged: dict[int, list] = {}
        self._clock = 0

    @classmethod
    def for_capacity(
        cls,
        capacity_bytes: int,
        *,
        dram_fraction: float = 0.05,
        flashiness: FlashinessPredicate | None = None,
        redemption_threshold: int | None = None,
    ) -> "StagingCache":
        """LRU tiers sized like ``HierarchicalCache.with_lru_dram``."""
        if not 0.0 <= dram_fraction < 1.0:
            raise ValueError("dram_fraction must be in [0, 1)")
        ssd = LRUCache(capacity_bytes)
        if dram_fraction == 0.0:
            return cls(
                None, ssd, flashiness,
                redemption_threshold=redemption_threshold,
            )
        dram = LRUCache(max(1, int(capacity_bytes * dram_fraction)))
        return cls(
            dram, ssd, flashiness, redemption_threshold=redemption_threshold
        )

    # --------------------------------------------------------------- access

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        index = self._clock
        self._clock = index + 1
        flashiness = self.flashiness
        dram = self.dram
        if dram is None:
            # Zero-size staging area: transparent shell over the L2 policy.
            result = self.ssd.access(oid, size, admit=admit)
            if result.hit:
                self.l2_hits += 1
            elif result.inserted:
                self.direct_admits += 1
            flashiness.on_request(index, oid, size)
            return result

        if oid in dram:
            dram.access(oid, size)
            self.l1_hits += 1
            if oid in self.ssd:
                result = self.ssd.access(oid, size)
                flashiness.on_request(index, oid, size)
                return AccessResult(hit=True, evicted=result.evicted)
            entry = self._staged.get(oid)
            if entry is None:
                # DRAM-resident but neither on the SSD nor staged: its SSD
                # copy was evicted from under it.  It re-enters staging on
                # its next miss, never from the hit path (keeps bar-zero
                # bit-identical to HierarchicalCache).
                flashiness.on_request(index, oid, size)
                return AccessResult(hit=True)
            entry[0] += 1
            promoted = False
            redeeming = False
            evicted: tuple[int, ...] = ()
            if entry[1]:
                promote = flashiness.should_promote(index, oid, size, entry[0])
            else:
                # Denied at miss time — but observed re-accesses contradict
                # a one-time prediction, so a configured redemption bar can
                # still earn the write (never for oversized objects).
                redeeming = (
                    self.redemption_threshold is not None
                    and entry[0] >= self.redemption_threshold
                    and size <= self.ssd.capacity
                )
                promote = redeeming
            if promote:
                result = self.ssd.access(oid, size, admit=True)
                if result.inserted:
                    del self._staged[oid]
                    self.promotions += 1
                    if redeeming:
                        self.redemptions += 1
                    promoted = True
                    evicted = result.evicted
            flashiness.on_request(index, oid, size)
            return AccessResult(hit=True, inserted=promoted, evicted=evicted)

        if oid in self.ssd:
            self.l2_hits += 1
            result = self.ssd.access(oid, size)
            dram_result = dram.access(oid, size)
            self._forget(dram_result.evicted)
            flashiness.on_request(index, oid, size)
            return AccessResult(hit=True, evicted=result.evicted)

        # Miss everywhere: DRAM always takes it; the SSD write waits for
        # the flashiness bar unless the bar is already crossed at zero.
        dram_result = dram.access(oid, size)
        self._forget(dram_result.evicted)
        eligible = admit and size <= self.ssd.capacity
        if eligible and flashiness.should_promote(index, oid, size, 0):
            result = self.ssd.access(oid, size, admit=True)
            if result.inserted:
                self.direct_admits += 1
            flashiness.on_request(index, oid, size)
            return AccessResult(
                hit=False, inserted=result.inserted, evicted=result.evicted
            )
        if oid in dram:
            # Objects too large for the staging area cannot accrue
            # evidence and are simply never admitted (Flashield: no
            # staging space means no flashiness estimate).
            self._staged[oid] = [0, eligible]
        flashiness.on_request(index, oid, size)
        return AccessResult(hit=False)

    def _forget(self, evicted) -> None:
        """Drop staged evidence for objects evicted from DRAM."""
        if not evicted:
            return
        staged = self._staged
        for victim in evicted:
            if staged.pop(victim, None) is not None:
                self.staged_evicted += 1

    def can_batch_hits(self) -> bool:
        """Never batch: staged hits can insert, and ``access_batch`` has no
        channel to report inserts to the stats/observer."""
        return False

    # ------------------------------------------------------------ interface

    @property
    def used_bytes(self) -> int:
        """SSD-tier bytes (the figure-relevant resource)."""
        return self.ssd.used_bytes

    @property
    def dram_used_bytes(self) -> int:
        return 0 if self.dram is None else self.dram.used_bytes

    @property
    def staged_count(self) -> int:
        """Objects currently accruing evidence in DRAM."""
        return len(self._staged)

    def staging_stats(self) -> dict:
        return {
            "promotions": self.promotions,
            "redemptions": self.redemptions,
            "direct_admits": self.direct_admits,
            "staged_evicted": self.staged_evicted,
            "staged_resident": len(self._staged),
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
        }

    def __contains__(self, oid: int) -> bool:
        if self.dram is not None and oid in self.dram:
            return True
        return oid in self.ssd

    def __len__(self) -> int:
        """Resident entries summed over tiers (objects in both count twice —
        they genuinely occupy space in each)."""
        if self.dram is None:
            return len(self.ssd)
        return len(self.ssd) + len(self.dram)
