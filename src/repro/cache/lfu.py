"""Least-Frequently-Used replacement with LRU tie-breaking.

Not part of the paper's evaluated set but a standard reference point; the
implementation uses frequency buckets of ordered dicts for O(1) amortised
operations (the classic O(1) LFU construction).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["LFUCache"]


class LFUCache(CachePolicy):
    """LFU with per-frequency LRU ordering (evicts the stalest min-freq)."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._size: dict[int, int] = {}
        self._freq: dict[int, int] = {}
        self._buckets: dict[int, OrderedDict[int, None]] = {}
        self._min_freq = 0
        self._used = 0

    def _bump(self, oid: int) -> None:
        f = self._freq[oid]
        bucket = self._buckets[f]
        del bucket[oid]
        if not bucket:
            del self._buckets[f]
            if self._min_freq == f:
                self._min_freq = f + 1
        self._freq[oid] = f + 1
        self._buckets.setdefault(f + 1, OrderedDict())[oid] = None

    def _evict_one(self) -> int:
        bucket = self._buckets[self._min_freq]
        victim, _ = bucket.popitem(last=False)
        if not bucket:
            del self._buckets[self._min_freq]
            if self._buckets:
                self._min_freq = min(self._buckets)
            else:
                self._min_freq = 0
        self._used -= self._size.pop(victim)
        del self._freq[victim]
        return victim

    def can_batch_hits(self) -> bool:
        # A hit bumps a per-object frequency, so every occurrence in a run
        # matters — the distinct-set shortcut doesn't apply and batching
        # would fall back to the early-stopping loop, which measures
        # *slower* than the simulator's flat loop (the extra membership
        # probe outweighs the skipped stats work).  Stay on the loop.
        return False

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        if oid in self._size:
            self._bump(oid)
            return AccessResult(hit=True)
        if not admit or size > self.capacity:
            return AccessResult(hit=False)
        evicted = []
        while self._used + size > self.capacity:
            evicted.append(self._evict_one())
        self._size[oid] = size
        self._freq[oid] = 1
        self._buckets.setdefault(1, OrderedDict())[oid] = None
        self._min_freq = 1
        self._used += size
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._size

    def __len__(self) -> int:
        return len(self._size)
