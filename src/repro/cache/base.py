"""Cache policy interface, per-access outcome, and statistics counters.

Design
------
A policy's single entry point is :meth:`CachePolicy.access`: it processes
one request *including* its metadata side effects (ARC ghost hits, the LIRS
stack) and — when the request misses and the caller admits it — performs
insertion and any evictions.  This single-call shape matters because for
ARC/LIRS a miss is itself a state transition; splitting lookup and insert
across two calls would let state drift in between.

The simulator (not the policy) owns the :class:`CacheStats` counters so that
every policy is measured identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "AccessResult",
    "CachePolicy",
    "CacheStats",
    "AdmissionPolicy",
    "CacheObserver",
]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one request.

    ``hit``       — object was resident.
    ``inserted``  — object was written into the cache (an SSD write).
    ``evicted``   — object ids displaced by this insertion.
    """

    hit: bool
    inserted: bool = False
    evicted: tuple[int, ...] = ()


class CachePolicy(ABC):
    """Size-aware replacement policy over integer object ids."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity = int(capacity_bytes)

    @abstractmethod
    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        """Process one request for object ``oid`` of ``size`` bytes.

        On a hit, recency/frequency state is updated and
        ``AccessResult(hit=True)`` returned.  On a miss with ``admit=True``
        the object is inserted (evicting residents as needed) unless it is
        larger than the whole cache; with ``admit=False`` only internal
        metadata (ghosts/history) is updated.
        """

    def access_if_present(self, oid: int, size: int) -> "AccessResult | None":
        """Process the request *iff* ``oid`` is resident, else ``None``.

        The simulator's hot loop calls this on every request; a ``None``
        return means "miss — ask admission, then call :meth:`access` with
        the verdict".  The default implementation is the classic
        membership-check-then-access pair (two hash lookups); policies
        with a cheap resident-hit path (LRU, FIFO) override it with a
        single-lookup version.  Implementations must not perform any
        miss-side state transition — that still belongs to the subsequent
        :meth:`access` call.
        """
        if oid in self:
            return self.access(oid, size)
        return None

    def can_batch_hits(self) -> bool:
        """Whether :meth:`access_batch` is worth calling on hit runs.

        ``True`` means the policy's hit-side transition is cheap enough —
        or vectorisable enough — that the simulator should route candidate
        guaranteed-hit runs (:class:`repro.cache.segments.SegmentPlan`)
        through :meth:`access_batch` instead of the per-request loop.  This
        is purely a *performance* capability: correctness never depends on
        it, because :meth:`access_batch` stops at the first non-hit.  The
        conservative default is ``False``; policies whose hits cannot evict
        (LRU, FIFO, LFU, SIEVE) or are loop-equivalent (S3LRU) opt in.
        """
        return False

    def access_batch(
        self, oids, sizes, distinct=None
    ) -> "tuple[int, tuple[int, ...]]":
        """Process a consecutive run of requests *expected* to all hit.

        ``oids``/``sizes`` are equal-length sequences (the simulator passes
        NumPy array slices; plain lists are accepted too).  Requests are
        processed in order **while they hit**; processing stops *before*
        the first non-resident request, so its miss-side transition
        (admission verdict, insertion, ghosts) is left entirely to the
        caller's per-request path.  Returns ``(consumed, evicted)`` where
        ``consumed`` is how many leading requests were processed as hits
        and ``evicted`` concatenates, in order, any objects displaced by
        those hits (possible for policies whose hit transition can
        demote/evict, e.g. S3LRU's segment-quota rounding).

        ``distinct``, when given, is the precomputed deduplication of the
        run — each distinct oid exactly once, ordered by **last occurrence**
        (:meth:`repro.cache.segments.SegmentPlan.batches` builds it
        vectorised).  A run of hits can only permute recency, and only the
        last occurrence of each object decides its final position, so
        ``distinct`` is everything an order-insensitive (FIFO, SIEVE) or
        promotion-only (LRU) policy needs — it never has to touch the full
        run.  The hint is advisory: every occurrence in the run shares its
        distinct set, so a policy may use it only after confirming all of
        ``distinct`` is resident, and must otherwise fall back to the exact
        early-stopping loop.

        This default loops :meth:`access_if_present` — semantics-preserving
        for every policy.  LRU/FIFO/SIEVE override it with hint-driven
        versions.
        """
        if hasattr(oids, "tolist"):  # NumPy slices: plain ints iterate faster
            oids = oids.tolist()
            sizes = sizes.tolist()
        consumed = 0
        evicted: list[int] = []
        access_if_present = self.access_if_present
        for oid, size in zip(oids, sizes):
            result = access_if_present(oid, size)
            if result is None:
                break
            consumed += 1
            if result.evicted:
                evicted.extend(result.evicted)
        return consumed, tuple(evicted)

    @property
    @abstractmethod
    def used_bytes(self) -> int:
        """Bytes currently resident; must never exceed ``capacity``."""

    @abstractmethod
    def __contains__(self, oid: int) -> bool:
        """True when ``oid`` is resident (metadata-only entries excluded)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident objects."""

    def _validate_request(self, size: int) -> None:
        if size <= 0:
            raise ValueError("object size must be positive")


class CacheObserver(ABC):
    """Receives the cache's mutation stream during a simulation.

    Used to drive downstream device models — e.g.
    :class:`repro.ssd.cache_device.CacheSSD` turns inserts into flash
    programs and evictions into TRIMs.
    """

    @abstractmethod
    def on_insert(self, oid: int, size: int) -> None:
        """Object written into the cache (an SSD write)."""

    @abstractmethod
    def on_evict(self, oid: int) -> None:
        """Object displaced from the cache."""


class AdmissionPolicy(ABC):
    """Decides whether a *missed* object should be written into the cache.

    This is the hook the paper's classification system (Fig. 4) plugs into:
    on every miss the simulator asks :meth:`should_admit`; implementations
    range from the trivial always-admit to the classifier + history-table
    system in :mod:`repro.core.admission`.
    """

    @abstractmethod
    def should_admit(self, index: int, oid: int, size: int) -> bool:
        """Admission verdict for the miss at trace position ``index``."""

    def on_hit(self, index: int, oid: int, size: int) -> None:
        """Optional hook: called on every cache hit."""

    def reset(self) -> None:
        """Optional hook: clear per-run state before a simulation."""


@dataclass
class CacheStats:
    """Counters accumulated by the simulator (files and bytes).

    The paper's reported ratios map as:

    * file hit rate   = ``hits / requests``                      (Fig. 6)
    * byte hit rate   = ``bytes_hit / bytes_requested``          (Fig. 7)
    * file write rate = ``files_written / requests``             (Fig. 8)
    * byte write rate = ``bytes_written / bytes_requested``      (Fig. 9)
    """

    requests: int = 0
    hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    files_written: int = 0
    bytes_written: int = 0
    evictions: int = 0
    admissions_denied: int = 0

    def record(self, size: int, result: AccessResult, denied: bool) -> None:
        self.requests += 1
        self.bytes_requested += size
        if result.hit:
            self.hits += 1
            self.bytes_hit += size
        if result.inserted:
            self.files_written += 1
            self.bytes_written += size
        self.evictions += len(result.evicted)
        if denied:
            self.admissions_denied += 1

    # ------------------------------------------------------------- ratios

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        return self.bytes_hit / self.bytes_requested if self.bytes_requested else 0.0

    @property
    def file_write_rate(self) -> float:
        return self.files_written / self.requests if self.requests else 0.0

    @property
    def byte_write_rate(self) -> float:
        return (
            self.bytes_written / self.bytes_requested if self.bytes_requested else 0.0
        )
