"""Least-Recently-Used replacement — the paper's baseline policy."""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["LRUCache"]


class LRUCache(CachePolicy):
    """Classic LRU over an :class:`~collections.OrderedDict` (O(1) per op).

    Insertion order = recency order: most recent at the right end, victims
    popped from the left.
    """

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()  # oid -> size
        self._used = 0

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        entries = self._entries
        if oid in entries:
            entries.move_to_end(oid)
            return AccessResult(hit=True)
        if not admit or size > self.capacity:
            return AccessResult(hit=False)
        evicted = []
        while self._used + size > self.capacity:
            victim, vsize = entries.popitem(last=False)
            self._used -= vsize
            evicted.append(victim)
        entries[oid] = size
        self._used += size
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._entries

    def __len__(self) -> int:
        return len(self._entries)
