"""Least-Recently-Used replacement — the paper's baseline policy."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.base import AccessResult, CachePolicy

__all__ = ["LRUCache"]

#: ``AccessResult`` is frozen, so every hit can share one instance — the
#: per-hit allocation would otherwise dominate the simulator's hot loop.
_HIT = AccessResult(hit=True)


class LRUCache(CachePolicy):
    """Classic LRU over an :class:`~collections.OrderedDict` (O(1) per op).

    Insertion order = recency order: most recent at the right end, victims
    popped from the left.
    """

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()  # oid -> size
        self._used = 0

    def access_if_present(self, oid: int, size: int) -> AccessResult | None:
        # No exception-based probe: raising KeyError costs ~1 µs, which on
        # miss-heavy streams (the admission regime) dwarfs the saved lookup.
        self._validate_request(size)
        if oid not in self._entries:
            return None
        self._entries.move_to_end(oid)
        return _HIT

    def can_batch_hits(self) -> bool:
        return True

    def access_batch(self, oids, sizes, distinct=None) -> tuple[int, tuple[int, ...]]:
        # A run of LRU hits only reorders recency, and only the *last*
        # occurrence of each object decides its final position: replaying
        # the run is equivalent to one move_to_end per distinct object in
        # ascending order of last occurrence (untouched residents keep
        # their relative order underneath).  The segment plan precomputes
        # exactly that order (``distinct``), so the happy path touches each
        # distinct object twice — one membership probe, one move — and the
        # repeats inside the run cost nothing.
        n = len(oids)
        if n == 0:
            return 0, ()
        entries = self._entries
        if distinct is None:
            if isinstance(oids, np.ndarray):  # plain ints hash faster
                oids = oids.tolist()
                sizes = sizes.tolist()
            if min(sizes) <= 0:
                # Replay per-request so the invalid size raises at its index.
                return super().access_batch(oids, sizes)
            distinct = list(dict.fromkeys(reversed(oids)))
            distinct.reverse()
        for o in distinct:
            if o not in entries:
                # Not the all-hit run the caller expected — fall back to
                # the exact early-stopping loop.
                return super().access_batch(oids, sizes)
        move = entries.move_to_end
        for o in distinct:
            move(o)
        return n, ()

    def access(self, oid: int, size: int, admit: bool = True) -> AccessResult:
        self._validate_request(size)
        entries = self._entries
        if oid in entries:
            entries.move_to_end(oid)
            return _HIT
        if not admit or size > self.capacity:
            return AccessResult(hit=False)
        evicted = []
        while self._used + size > self.capacity:
            victim, vsize = entries.popitem(last=False)
            self._used -= vsize
            evicted.append(victim)
        entries[oid] = size
        self._used += size
        return AccessResult(hit=False, inserted=True, evicted=tuple(evicted))

    @property
    def used_bytes(self) -> int:
        return self._used

    def __contains__(self, oid: int) -> bool:
        return oid in self._entries

    def __len__(self) -> int:
        return len(self._entries)
