"""Deterministic consistent hashing for OC-node sharding.

Python's built-in ``hash`` is salted per process, so the ring uses FNV-1a —
stable across runs, cheap, and good enough dispersion for sharding
integer object ids.  Virtual nodes (replicas) smooth the load distribution;
lookups are a binary search over the sorted token array.
"""

from __future__ import annotations

import bisect

__all__ = ["stable_hash", "ConsistentHashRing"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(key: str | int) -> int:
    """64-bit hash, identical across processes and runs.

    FNV-1a core with a splitmix64-style avalanche finaliser: plain FNV-1a
    barely stirs the high bits on short keys, which would skew a ring
    lookup that binary-searches the full 64-bit space.
    """
    data = str(key).encode()
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    # splitmix64 finaliser
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK
    return h ^ (h >> 31)


class ConsistentHashRing:
    """Consistent-hash ring mapping keys to node names.

    Parameters
    ----------
    nodes:
        Node names (order-independent).
    replicas:
        Virtual nodes per physical node (higher = better balance).
    """

    def __init__(self, nodes, *, replicas: int = 64):
        nodes = list(nodes)
        if not nodes:
            raise ValueError("ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("duplicate node names")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._tokens: list[int] = []
        self._owners: list[str] = []
        points = []
        for node in nodes:
            for r in range(replicas):
                points.append((stable_hash(f"{node}#{r}"), node))
        points.sort()
        self._tokens = [t for t, _ in points]
        self._owners = [n for _, n in points]
        self.nodes = sorted(nodes)

    def lookup(self, key: str | int) -> str:
        """Node owning ``key`` (first token clockwise of its hash)."""
        h = stable_hash(key)
        idx = bisect.bisect_right(self._tokens, h)
        if idx == len(self._tokens):
            idx = 0
        return self._owners[idx]

    def lookup_n(self, key: str | int, n: int) -> tuple[str, ...]:
        """The ``n`` distinct nodes owning ``key``, in preference order.

        The walk continues clockwise past :meth:`lookup`'s token, skipping
        virtual nodes of owners already collected, so ``lookup_n(key, 1)``
        equals ``(lookup(key),)`` and replica sets are consistent under
        membership changes: removing a node deletes only its tokens, which
        leaves the relative walk order of every other owner untouched — a
        key's reduced owner sequence is its full sequence with the removed
        node struck out.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if n > len(self.nodes):
            raise ValueError(
                f"cannot pick {n} distinct owners from {len(self.nodes)} nodes"
            )
        h = stable_hash(key)
        idx = bisect.bisect_right(self._tokens, h)
        owners: list[str] = []
        seen = set()
        tokens = len(self._tokens)
        for step in range(tokens):
            owner = self._owners[(idx + step) % tokens]
            if owner not in seen:
                seen.add(owner)
                owners.append(owner)
                if len(owners) == n:
                    break
        return tuple(owners)

    def assignments(self, keys) -> dict[str, int]:
        """Count of keys per node — handy for balance checks."""
        counts = {n: 0 for n in self.nodes}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts
