"""A single cache server: replacement policy + optional admission filter."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.base import AdmissionPolicy, CachePolicy

__all__ = ["NodeStats", "CacheNode"]


@dataclass
class NodeStats:
    """Per-node request counters."""

    requests: int = 0
    hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    files_written: int = 0
    bytes_written: int = 0
    admissions_denied: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        return self.bytes_hit / self.bytes_requested if self.bytes_requested else 0.0


class CacheNode:
    """One cache server in the cluster.

    ``request`` is the single entry point: it performs lookup, consults the
    admission filter on a miss, and updates counters.  Returns True on hit.
    """

    def __init__(
        self,
        name: str,
        policy: CachePolicy,
        admission: AdmissionPolicy | None = None,
    ):
        self.name = name
        self.policy = policy
        self.admission = admission
        self.stats = NodeStats()
        # Pre-bound metric children (see :meth:`instrument`); None keeps the
        # per-request fast path branch-predictable for uninstrumented runs.
        self._m_hits = None
        self._m_misses = None
        self._m_writes = None
        self._m_denied = None
        # Write provenance (see :meth:`bind_ledger`): when a ledger is
        # bound, every insertion is recorded under ``write_cause`` (the
        # router sets it per request — flood / rewarm / default accept;
        # :meth:`fill` always records ``replica_fill``) with ``model_label``
        # naming the admission policy that made the call, and every denial
        # becomes an avoided write.  ``None`` keeps the hot path untouched.
        self.ledger = None
        self.write_cause = "admission_accept"
        self.model_label = "none"
        #: Merged-trace index at which this incarnation cold-started, or
        #: ``None`` for an original node (rewarm-cause detection).
        self.restarted_at: int | None = None

    def instrument(self, registry) -> None:
        """Bind this node's counters into an obs metrics registry.

        Children carry a ``node`` label so one registry can hold a whole
        cluster tier; counters are incremented per request from then on
        (pre-existing totals are not backfilled).
        """
        requests = registry.counter(
            "repro_cluster_requests_total",
            "Cluster-node requests by node and result.",
            ("node", "result"),
        )
        self._m_hits = requests.labels(node=self.name, result="hit")
        self._m_misses = requests.labels(node=self.name, result="miss")
        self._m_writes = registry.counter(
            "repro_cluster_ssd_writes_total",
            "Cluster-node cache insertions (SSD writes) by node.",
            ("node",),
        ).labels(node=self.name)
        self._m_denied = registry.counter(
            "repro_cluster_admissions_denied_total",
            "Cluster-node admission denials by node.",
            ("node",),
        ).labels(node=self.name)

    def bind_ledger(
        self,
        ledger,
        *,
        model_label: str | None = None,
        restarted_at: int | None = None,
    ) -> None:
        """Attach a :class:`~repro.obs.ledger.WriteLedger` to this node."""
        self.ledger = ledger
        if model_label is not None:
            self.model_label = model_label
        self.restarted_at = restarted_at

    def reset(self) -> None:
        """Clear counters and admission state.

        Cache *contents* are deliberately kept — production cache servers
        stay warm across measurement windows.  Build a fresh node for a
        cold-start run.
        """
        self.stats = NodeStats()
        if self.admission is not None:
            self.admission.reset()

    def request(self, index: int, oid: int, size: int) -> bool:
        stats = self.stats
        stats.requests += 1
        stats.bytes_requested += size
        if oid in self.policy:
            result = self.policy.access(oid, size)
            stats.hits += 1
            stats.bytes_hit += size
            if self.admission is not None:
                self.admission.on_hit(index, oid, size)
            if self._m_hits is not None:
                self._m_hits.inc()
            if result.inserted:
                # A staging tier can turn a DRAM hit into the flash write
                # it deferred at miss time (the object crossed its
                # flashiness bar).  Router-set causes (flood/rewarm) keep
                # precedence — they explain why the request came.
                stats.files_written += 1
                stats.bytes_written += size
                if self._m_writes is not None:
                    self._m_writes.inc()
                if self.ledger is not None:
                    cause = self.write_cause
                    if cause == "admission_accept":
                        cause = "staging_promote"
                    self.ledger.record_write(cause, size, model=self.model_label)
            return True
        admit = (
            self.admission.should_admit(index, oid, size)
            if self.admission is not None
            else True
        )
        result = self.policy.access(oid, size, admit=admit)
        if not admit:
            stats.admissions_denied += 1
            if self._m_denied is not None:
                self._m_denied.inc()
            if self.ledger is not None:
                self.ledger.record_avoided(size, model=self.model_label)
        if result.inserted:
            stats.files_written += 1
            stats.bytes_written += size
            if self._m_writes is not None:
                self._m_writes.inc()
            if self.ledger is not None:
                cause = self.write_cause
                if cause == "admission_accept" and getattr(
                    self.policy, "last_insert_was_churn", False
                ):
                    # A learned eviction policy re-admitted its own victim:
                    # the flash write pays for an eviction misprediction,
                    # not for new bytes.  Router-set causes (flood/rewarm)
                    # keep precedence — they explain *why the request came*,
                    # churn only refines the default.
                    cause = "eviction_churn"
                self.ledger.record_write(cause, size, model=self.model_label)
        if self._m_misses is not None:
            self._m_misses.inc()
        return False

    def fill(self, index: int, oid: int, size: int) -> bool:
        """Replica write-through: offer ``oid`` without serving a request.

        Used by replicated routing (``repro.scenario``): the primary serves
        the request via :meth:`request`; secondaries are *offered* the
        object so their copies stay warm for failover.  A resident copy is
        refreshed (recency touch); a non-resident one goes through this
        node's own admission filter.  No request/hit counters move — only
        write counters when an insertion happens.  Returns True iff the
        object was written.
        """
        stats = self.stats
        if oid in self.policy:
            result = self.policy.access(oid, size)
            if result.inserted:
                # Staging tier: the replica touch pushed a staged object
                # over its flashiness bar.  The write is still a replica-
                # driven one, so it stays under ``replica_fill`` (keeps
                # the phase-level replica_writes reconciliation exact).
                stats.files_written += 1
                stats.bytes_written += size
                if self._m_writes is not None:
                    self._m_writes.inc()
                if self.ledger is not None:
                    self.ledger.record_write(
                        "replica_fill", size, model=self.model_label
                    )
                return True
            return False
        admit = (
            self.admission.should_admit(index, oid, size)
            if self.admission is not None
            else True
        )
        result = self.policy.access(oid, size, admit=admit)
        if not admit:
            stats.admissions_denied += 1
            if self._m_denied is not None:
                self._m_denied.inc()
            if self.ledger is not None:
                self.ledger.record_avoided(size, model=self.model_label)
        if result.inserted:
            stats.files_written += 1
            stats.bytes_written += size
            if self._m_writes is not None:
                self._m_writes.inc()
            if self.ledger is not None:
                self.ledger.record_write(
                    "replica_fill", size, model=self.model_label
                )
        return result.inserted
