"""A single cache server: replacement policy + optional admission filter."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.base import AdmissionPolicy, CachePolicy

__all__ = ["NodeStats", "CacheNode"]


@dataclass
class NodeStats:
    """Per-node request counters."""

    requests: int = 0
    hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    files_written: int = 0
    bytes_written: int = 0
    admissions_denied: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_hit_rate(self) -> float:
        return self.bytes_hit / self.bytes_requested if self.bytes_requested else 0.0


class CacheNode:
    """One cache server in the cluster.

    ``request`` is the single entry point: it performs lookup, consults the
    admission filter on a miss, and updates counters.  Returns True on hit.
    """

    def __init__(
        self,
        name: str,
        policy: CachePolicy,
        admission: AdmissionPolicy | None = None,
    ):
        self.name = name
        self.policy = policy
        self.admission = admission
        self.stats = NodeStats()

    def reset(self) -> None:
        """Clear counters and admission state.

        Cache *contents* are deliberately kept — production cache servers
        stay warm across measurement windows.  Build a fresh node for a
        cold-start run.
        """
        self.stats = NodeStats()
        if self.admission is not None:
            self.admission.reset()

    def request(self, index: int, oid: int, size: int) -> bool:
        stats = self.stats
        stats.requests += 1
        stats.bytes_requested += size
        if oid in self.policy:
            self.policy.access(oid, size)
            stats.hits += 1
            stats.bytes_hit += size
            if self.admission is not None:
                self.admission.on_hit(index, oid, size)
            return True
        admit = (
            self.admission.should_admit(index, oid, size)
            if self.admission is not None
            else True
        )
        result = self.policy.access(oid, size, admit=admit)
        if not admit:
            stats.admissions_denied += 1
        if result.inserted:
            stats.files_written += 1
            stats.bytes_written += size
        return False
