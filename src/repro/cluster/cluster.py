"""The two-tier request flow: client → OC shard → DC → backend (§2.1).

The OC tier is a set of cache servers sharded by consistent hashing (each
photo has one home OC node, as in a CDN edge); the DC tier is one larger
cache in the datacenter; misses there read the backend store.  The paper's
classification system can be attached to either tier (or both) — the OC
deployment is what its evaluation models.

Outputs per tier: hit rates, inter-tier traffic (the DC's purpose is
"reduc[ing] the traffic burden of the backend"), per-node balance, and an
end-to-end latency that extends Eqs. 3–6 with network hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.hashing import ConsistentHashRing
from repro.cluster.node import CacheNode, NodeStats
from repro.config import DEFAULT_LATENCY, LatencyConstants
from repro.trace.records import Trace

__all__ = [
    "ClusterLatency",
    "ClusterResult",
    "TwoTierCluster",
    "simulate_cluster",
    "simulate_cluster_with_events",
]


@dataclass(frozen=True)
class ClusterLatency:
    """Service times for the two-tier flow (seconds).

    ``device`` supplies the paper's Eq. 3–6 constants; the two network
    terms model the OC→DC and DC→backend hops of Fig. 1.
    """

    device: LatencyConstants = DEFAULT_LATENCY
    t_oc_dc: float = 2e-3        # metro round trip
    t_dc_backend: float = 0.5e-3 # intra-datacenter round trip

    def __post_init__(self) -> None:
        if self.t_oc_dc < 0 or self.t_dc_backend < 0:
            raise ValueError("network latencies must be non-negative")

    def oc_hit(self) -> float:
        return self.device.t_query + self.device.t_ssdr

    def dc_hit(self, *, classified_oc: bool) -> float:
        t = self.oc_hit() + self.t_oc_dc + self.device.t_query
        if classified_oc:
            t += self.device.t_classify
        return t

    def backend_read(self, *, classified_oc: bool, classified_dc: bool) -> float:
        t = (
            self.dc_hit(classified_oc=classified_oc)
            - self.device.t_ssdr  # DC missed: no SSD read there
            + self.t_dc_backend
            + self.device.t_hddr
        )
        if classified_dc:
            t += self.device.t_classify
        return t


@dataclass
class ClusterResult:
    """Aggregate outcome of one cluster simulation."""

    oc_nodes: dict[str, CacheNode]
    dc: CacheNode
    requests: int
    oc_hits: int
    dc_hits: int
    backend_reads: int
    bytes_total: int
    bytes_to_dc: int
    bytes_to_backend: int
    mean_latency: float
    per_node_requests: dict[str, int] = field(default_factory=dict)
    #: SSD writes performed by OC nodes removed mid-run (kill/decommission).
    #: Without this, a node's writes would vanish from the cluster totals
    #: the moment it leaves the ring — totals must stay monotone.
    retired_files_written: int = 0

    @property
    def oc_hit_rate(self) -> float:
        return self.oc_hits / self.requests if self.requests else 0.0

    @property
    def dc_hit_rate(self) -> float:
        """DC hits over DC-tier requests (i.e. OC misses)."""
        dc_requests = self.requests - self.oc_hits
        return self.dc_hits / dc_requests if dc_requests else 0.0

    @property
    def overall_hit_rate(self) -> float:
        return (self.oc_hits + self.dc_hits) / self.requests if self.requests else 0.0

    @property
    def backend_traffic_fraction(self) -> float:
        """Share of requested bytes that reach the backend store."""
        return self.bytes_to_backend / self.bytes_total if self.bytes_total else 0.0

    @property
    def load_imbalance(self) -> float:
        """max/mean requests per OC node (1.0 = perfectly balanced)."""
        counts = np.array(list(self.per_node_requests.values()), dtype=float)
        if counts.size == 0 or counts.mean() == 0:
            return 1.0
        return float(counts.max() / counts.mean())

    @property
    def total_ssd_writes(self) -> int:
        return (
            self.dc.stats.files_written
            + self.retired_files_written
            + sum(n.stats.files_written for n in self.oc_nodes.values())
        )

    def summary(self) -> str:
        return (
            f"requests={self.requests:,}  "
            f"OC hit={self.oc_hit_rate:.3f}  DC hit={self.dc_hit_rate:.3f}  "
            f"overall={self.overall_hit_rate:.3f}\n"
            f"traffic: client→OC 100%  OC→DC "
            f"{100 * self.bytes_to_dc / max(self.bytes_total, 1):.1f}%  "
            f"DC→backend {100 * self.backend_traffic_fraction:.1f}%\n"
            f"SSD writes (all nodes): {self.total_ssd_writes:,}  "
            f"OC load imbalance: {self.load_imbalance:.2f}  "
            f"mean latency: {1e3 * self.mean_latency:.3f} ms"
        )


class TwoTierCluster:
    """OC shard ring + DC cache + backend (Fig. 1's download path).

    Parameters
    ----------
    oc_nodes:
        Mapping of node name → :class:`CacheNode` for the OC tier.
    dc:
        The datacenter cache node.
    replicas:
        Virtual nodes for the consistent-hash ring.
    latency:
        Timing model for the three outcomes.
    """

    def __init__(
        self,
        oc_nodes: dict[str, CacheNode],
        dc: CacheNode,
        *,
        replicas: int = 64,
        latency: ClusterLatency | None = None,
    ):
        if not oc_nodes:
            raise ValueError("need at least one OC node")
        self.oc_nodes = dict(oc_nodes)
        self.dc = dc
        self.ring = ConsistentHashRing(self.oc_nodes, replicas=replicas)
        self.latency = latency or ClusterLatency()
        self._registry = None
        # Counters of nodes taken out of service: removal must never make
        # cumulative cluster totals go backwards, so the departing node's
        # stats object is parked here (the node itself keeps a reference —
        # always build a *fresh* CacheNode when re-adding under a name).
        self.retired_stats: list[NodeStats] = []

    def instrument(self, registry) -> None:
        """Bind every node (OC tier + DC) into one metrics registry.

        Nodes added later via :meth:`add_node` inherit the registry; the
        DC node is labelled by its own name (conventionally ``"dc"``).
        """
        self._registry = registry
        for node in self.oc_nodes.values():
            node.instrument(registry)
        self.dc.instrument(registry)

    def attach_ledger(self, ledger) -> None:
        """Route every node's write provenance into one ``WriteLedger``.

        Covers the OC tier and the DC; nodes added later must be bound by
        the caller (the scenario engine does, carrying the node's current
        model label and restart position).  The ledger is cluster-global
        and monotone: a removed node's recorded writes stay accounted, so
        per-cause totals always sum to the cumulative cluster write count
        (``oc_tier_totals().files_written + dc.stats.files_written``, i.e.
        :attr:`ClusterResult.total_ssd_writes` including retired stats).
        """
        for node in self.oc_nodes.values():
            node.bind_ledger(ledger)
        self.dc.bind_ledger(ledger)

    def reset(self) -> None:
        for node in self.oc_nodes.values():
            node.reset()
        self.dc.reset()
        self.retired_stats.clear()

    @property
    def retired_files_written(self) -> int:
        """SSD writes performed by OC nodes since removed from the ring."""
        return sum(s.files_written for s in self.retired_stats)

    def oc_tier_totals(self) -> NodeStats:
        """Cumulative OC-tier counters, *including* removed nodes.

        The live-node sum alone is not monotone across a kill — the dead
        node's history must keep counting toward cluster totals, exactly
        as a production fleet's cumulative telemetry would.
        """
        total = NodeStats()
        for stats in (
            *(n.stats for n in self.oc_nodes.values()),
            *self.retired_stats,
        ):
            total.requests += stats.requests
            total.hits += stats.hits
            total.bytes_requested += stats.bytes_requested
            total.bytes_hit += stats.bytes_hit
            total.files_written += stats.files_written
            total.bytes_written += stats.bytes_written
            total.admissions_denied += stats.admissions_denied
        return total

    def remove_node(self, name: str) -> CacheNode:
        """Take an OC node out of service (failure / decommission).

        The ring is rebuilt from the survivors; consistent hashing
        guarantees only the removed node's keys are remapped.  The node's
        cached contents are lost to the tier (its objects will re-miss),
        but its counters are retired into :attr:`retired_stats` so
        cumulative cluster totals stay monotone and consistent.
        """
        if name not in self.oc_nodes:
            raise KeyError(f"unknown node {name!r}")
        if len(self.oc_nodes) == 1:
            raise ValueError("cannot remove the last OC node")
        node = self.oc_nodes.pop(name)
        self.retired_stats.append(node.stats)
        self.ring = ConsistentHashRing(self.oc_nodes, replicas=self.ring.replicas)
        return node

    def add_node(self, node: CacheNode) -> None:
        """Bring a new (cold) OC node into service."""
        if node.name in self.oc_nodes:
            raise ValueError(f"node {node.name!r} already present")
        self.oc_nodes[node.name] = node
        if self._registry is not None:
            node.instrument(self._registry)
        self.ring = ConsistentHashRing(self.oc_nodes, replicas=self.ring.replicas)


def simulate_cluster_with_events(
    trace: Trace,
    cluster: TwoTierCluster,
    events,
    *,
    window_size: int = 5000,
) -> tuple[ClusterResult, np.ndarray]:
    """Replay a trace while topology events fire mid-stream.

    ``events`` is a list of ``(request_index, fn)`` pairs; each ``fn`` is
    called with the cluster just before the request at that index is
    served (e.g. ``lambda c: c.remove_node("oc2")``).  Returns the final
    :class:`ClusterResult` plus a per-window OC hit-rate series so the
    disruption and recovery are visible.
    """
    events = sorted(events, key=lambda e: e[0])
    for index, _ in events:
        if index < 0:
            raise ValueError("event indices must be non-negative")
    if window_size < 1:
        raise ValueError("window_size must be >= 1")

    lat = cluster.latency
    dc = cluster.dc
    oc_nodes = cluster.oc_nodes

    oids = trace.object_ids
    sizes = trace.catalog["size"][oids]
    oid_list = oids.tolist()
    size_list = sizes.tolist()
    n = len(oid_list)

    object_home: dict[int, str] = {}
    oc_hits = dc_hits = backend_reads = 0
    bytes_to_dc = bytes_to_backend = 0
    latency_sum = 0.0
    per_node_requests: dict[str, int] = {name: 0 for name in oc_nodes}
    window_hits = np.zeros(-(-n // window_size), dtype=np.int64)
    window_reqs = np.zeros_like(window_hits)

    classified_oc = any(nd.admission is not None for nd in oc_nodes.values())
    t_oc_hit = lat.oc_hit()
    t_dc_hit = lat.dc_hit(classified_oc=classified_oc)
    t_backend = lat.backend_read(
        classified_oc=classified_oc, classified_dc=dc.admission is not None
    )

    next_event = 0
    for i, oid in enumerate(oid_list):
        while next_event < len(events) and events[next_event][0] == i:
            events[next_event][1](cluster)
            object_home.clear()  # topology changed: re-resolve homes
            oc_nodes = cluster.oc_nodes
            for name in oc_nodes:
                per_node_requests.setdefault(name, 0)
            next_event += 1

        size = size_list[i]
        home = object_home.get(oid)
        if home is None:
            home = object_home[oid] = cluster.ring.lookup(oid)
        node = oc_nodes[home]
        per_node_requests[home] += 1
        w = i // window_size
        window_reqs[w] += 1

        if node.request(i, oid, size):
            oc_hits += 1
            window_hits[w] += 1
            latency_sum += t_oc_hit
            continue
        bytes_to_dc += size
        if dc.request(i, oid, size):
            dc_hits += 1
            latency_sum += t_dc_hit
            continue
        backend_reads += 1
        bytes_to_backend += size
        latency_sum += t_backend

    result = ClusterResult(
        oc_nodes=dict(oc_nodes),
        dc=dc,
        requests=n,
        oc_hits=oc_hits,
        dc_hits=dc_hits,
        backend_reads=backend_reads,
        bytes_total=int(sizes.sum()),
        bytes_to_dc=bytes_to_dc,
        bytes_to_backend=bytes_to_backend,
        mean_latency=latency_sum / n if n else 0.0,
        per_node_requests=per_node_requests,
        retired_files_written=cluster.retired_files_written,
    )
    with np.errstate(invalid="ignore"):
        series = np.where(window_reqs > 0, window_hits / window_reqs, np.nan)
    return result, series


def simulate_cluster(trace: Trace, cluster: TwoTierCluster) -> ClusterResult:
    """Replay a trace through the two-tier cluster."""
    cluster.reset()
    lat = cluster.latency
    dc = cluster.dc
    ring = cluster.ring
    oc_nodes = cluster.oc_nodes

    # Precompute each object's home OC node once (objects don't migrate).
    object_home = {}
    oids = trace.object_ids
    sizes = trace.catalog["size"][oids]
    oid_list = oids.tolist()
    size_list = sizes.tolist()

    oc_hits = dc_hits = backend_reads = 0
    bytes_to_dc = bytes_to_backend = 0
    latency_sum = 0.0
    per_node_requests: dict[str, int] = {name: 0 for name in oc_nodes}

    classified_oc = any(n.admission is not None for n in oc_nodes.values())
    classified_dc = dc.admission is not None
    t_oc_hit = lat.oc_hit()
    t_dc_hit = lat.dc_hit(classified_oc=classified_oc)
    t_backend = lat.backend_read(
        classified_oc=classified_oc, classified_dc=classified_dc
    )

    for i, oid in enumerate(oid_list):
        size = size_list[i]
        home = object_home.get(oid)
        if home is None:
            home = object_home[oid] = ring.lookup(oid)
        node = oc_nodes[home]
        per_node_requests[home] += 1

        if node.request(i, oid, size):
            oc_hits += 1
            latency_sum += t_oc_hit
            continue
        bytes_to_dc += size
        if dc.request(i, oid, size):
            dc_hits += 1
            latency_sum += t_dc_hit
            continue
        backend_reads += 1
        bytes_to_backend += size
        latency_sum += t_backend

    n = len(oid_list)
    return ClusterResult(
        oc_nodes=oc_nodes,
        dc=dc,
        requests=n,
        oc_hits=oc_hits,
        dc_hits=dc_hits,
        backend_reads=backend_reads,
        bytes_total=int(sizes.sum()),
        bytes_to_dc=bytes_to_dc,
        bytes_to_backend=bytes_to_backend,
        mean_latency=latency_sum / n if n else 0.0,
        per_node_requests=per_node_requests,
    )
