"""Two-tier distributed photo cache — the §2.1 Tencent architecture.

Figure 1 of the paper: download requests hit an **Outside Cache** layer
(OC — many user-facing cache servers), whose misses fall through to a
**Datacenter Cache** (DC) in front of the backend photo store.  Both
tiers run SSD caches, and the classification system deploys at either.

* :mod:`repro.cluster.hashing` — deterministic consistent-hash ring for
  sharding objects across OC nodes;
* :mod:`repro.cluster.node` — one cache server (policy + optional
  admission filter + counters);
* :mod:`repro.cluster.cluster` — the two-tier request flow, per-tier hit
  rates, inter-tier traffic, and the latency model extended with network
  hops.

The fault-injecting scenario orchestrator on top of this package lives in
:mod:`repro.scenario`.
"""

from repro.cluster.hashing import ConsistentHashRing, stable_hash
from repro.cluster.node import CacheNode, NodeStats
from repro.cluster.cluster import (
    ClusterLatency,
    ClusterResult,
    TwoTierCluster,
    simulate_cluster,
    simulate_cluster_with_events,
)

__all__ = [
    "ConsistentHashRing",
    "stable_hash",
    "CacheNode",
    "NodeStats",
    "ClusterLatency",
    "ClusterResult",
    "TwoTierCluster",
    "simulate_cluster",
    "simulate_cluster_with_events",
]
