"""Photo catalog synthesis: types, sizes, owners, upload times.

§3.2.1: photos come in six resolutions (a, b, c, m, l, o) × two formats
(png = 0, jpg = 5), twelve types total, with strongly skewed request shares
(Fig. 3: ``l5`` alone ≈ 45 %).  Photo size correlates with resolution, and
newer photos are more popular.
"""

from __future__ import annotations

import numpy as np

from repro.trace.owners import OwnerModel
from repro.trace.records import CATALOG_DTYPE

__all__ = [
    "PHOTO_TYPES",
    "PHOTO_TYPE_REQUEST_SHARE",
    "PHOTO_TYPE_POPULARITY",
    "RESOLUTION_BASE_BYTES",
    "generate_catalog",
]

#: Order fixes the integer encoding used across the package (§3.2.3 maps the
#: twelve types to discrete values).
PHOTO_TYPES = ("a0", "a5", "b0", "b5", "c0", "c5", "m0", "m5", "o0", "o5", "l0", "l5")

#: Request-share targets eyeballed from Fig. 3 (l5 dominates at ~45 %; jpg
#: variants dwarf png).  Values sum to 1.
PHOTO_TYPE_REQUEST_SHARE = {
    "a0": 0.015,
    "a5": 0.07,
    "b0": 0.015,
    "b5": 0.10,
    "c0": 0.010,
    "c5": 0.08,
    "m0": 0.025,
    "m5": 0.15,
    "o0": 0.005,
    "o5": 0.05,
    "l0": 0.030,
    "l5": 0.45,
}

#: Relative re-access propensity by type: "for a certain type of photo, the
#: access probability is relatively stable" (§3.2.1) — the mainstream
#: display sizes (l5/m5) are re-viewed, originals and thumbnails much less.
PHOTO_TYPE_POPULARITY = {
    "a0": 0.5,
    "a5": 0.7,
    "b0": 0.5,
    "b5": 0.8,
    "c0": 0.5,
    "c5": 0.8,
    "m0": 0.7,
    "m5": 1.2,
    "o0": 0.3,
    "o5": 0.5,
    "l0": 0.8,
    "l5": 1.5,
}

#: Median size per resolution letter, bytes.  jpg (suffix 5) is the
#: reference; png (suffix 0) is ~1.6× larger at equal resolution.
RESOLUTION_BASE_BYTES = {
    "a": 3 * 1024,
    "b": 8 * 1024,
    "c": 14 * 1024,
    "m": 30 * 1024,
    "l": 52 * 1024,
    "o": 110 * 1024,
}

_PNG_FACTOR = 1.6
_SIZE_LOG_SIGMA = 0.45


def type_request_share_array() -> np.ndarray:
    return np.array([PHOTO_TYPE_REQUEST_SHARE[t] for t in PHOTO_TYPES])


def type_popularity_array() -> np.ndarray:
    return np.array([PHOTO_TYPE_POPULARITY[t] for t in PHOTO_TYPES])


def _type_base_sizes() -> np.ndarray:
    out = np.empty(len(PHOTO_TYPES))
    for i, t in enumerate(PHOTO_TYPES):
        base = RESOLUTION_BASE_BYTES[t[0]]
        out[i] = base * (_PNG_FACTOR if t[1] == "0" else 1.0)
    return out


def generate_catalog(
    n_objects: int,
    owners: OwnerModel,
    duration: float,
    rng: np.random.Generator,
    *,
    pre_trace_fraction: float = 0.35,
    pre_trace_age_scale: float = 30.0 * 86400.0,
) -> np.ndarray:
    """Generate a ``CATALOG_DTYPE`` array of ``n_objects`` photos.

    * **type** is drawn from the Fig.-3 request-share mix (per-request and
      per-photo shares coincide up to the popularity multipliers, which we
      fold into the propensity model instead);
    * **size** is log-normal around the resolution's base size;
    * **owner** assignment is popularity-weighted — active owners upload
      (and have viewed) more photos;
    * **upload_time**: ``pre_trace_fraction`` of photos predate the trace
      (exponential ages, scale ≈ 1 month); the rest upload uniformly during
      the trace window, matching the observation that workload is dominated
      by recent photos.
    """
    if n_objects < 1:
        raise ValueError("n_objects must be >= 1")
    if not 0.0 <= pre_trace_fraction <= 1.0:
        raise ValueError("pre_trace_fraction must be in [0, 1]")
    if duration <= 0:
        raise ValueError("duration must be positive")

    catalog = np.empty(n_objects, dtype=CATALOG_DTYPE)

    share = type_request_share_array()
    catalog["photo_type"] = rng.choice(
        len(PHOTO_TYPES), size=n_objects, p=share
    ).astype(np.int8)

    base = _type_base_sizes()[catalog["photo_type"]]
    sizes = base * rng.lognormal(
        -0.5 * _SIZE_LOG_SIGMA**2, _SIZE_LOG_SIGMA, size=n_objects
    )
    catalog["size"] = np.maximum(sizes.astype(np.int64), 512)

    # Popular owners appear more often in the *viewed* catalog.
    p_owner = owners.popularity / owners.popularity.sum()
    catalog["owner_id"] = rng.choice(owners.n_owners, size=n_objects, p=p_owner)

    pre = rng.random(n_objects) < pre_trace_fraction
    upload = np.empty(n_objects)
    upload[pre] = -rng.exponential(pre_trace_age_scale, size=int(pre.sum()))
    upload[~pre] = rng.uniform(0.0, duration, size=int((~pre).sum()))
    catalog["upload_time"] = upload
    return catalog
