"""Trace composition: interleave, concatenate, and rate-scale workloads.

Downstream what-if studies need composite traces — e.g. two tenants
sharing one cache tier, a workload doubling in rate, or day-over-day
splicing.  These utilities operate purely on the
:class:`~repro.trace.records.Trace` schema, so composed traces run through
every simulator, labeller and classifier unchanged.

Object-id spaces are kept disjoint when merging: each input's catalog is
appended and its ids offset, so tenants never alias each other's photos.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import ACCESS_DTYPE, CATALOG_DTYPE, Trace

__all__ = ["interleave_traces", "concat_traces", "scale_rate"]


def _merge_catalogs(a: Trace, b: Trace) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Append catalogs/owner tables; return offsets for ids."""
    catalog = np.concatenate([a.catalog, b.catalog]).view(CATALOG_DTYPE)
    owner_offset = a.owner_avg_views.shape[0]
    catalog["owner_id"][a.catalog.shape[0]:] += owner_offset
    views = np.concatenate([a.owner_avg_views, b.owner_avg_views])
    friends = np.concatenate([a.owner_active_friends, b.owner_active_friends])
    return catalog, views, friends, a.catalog.shape[0], owner_offset


def interleave_traces(a: Trace, b: Trace) -> Trace:
    """Merge two traces on their common timeline (multi-tenant mix).

    Both traces keep their own timestamps; accesses are merge-sorted.  The
    result's duration is the max of the inputs'.
    """
    catalog, views, friends, id_offset, _ = _merge_catalogs(a, b)

    b_acc = b.accesses.copy()
    b_acc["object_id"] += id_offset
    merged = np.concatenate([a.accesses, b_acc]).view(ACCESS_DTYPE)
    order = np.argsort(merged["timestamp"], kind="stable")

    viral = None
    if a.viral_mask is not None or b.viral_mask is not None:
        va = a.viral_mask if a.viral_mask is not None else np.zeros(a.n_objects, bool)
        vb = b.viral_mask if b.viral_mask is not None else np.zeros(b.n_objects, bool)
        viral = np.concatenate([va, vb])

    return Trace(
        accesses=np.ascontiguousarray(merged[order]),
        catalog=catalog,
        owner_active_friends=friends,
        owner_avg_views=views,
        duration=max(a.duration, b.duration),
        viral_mask=viral,
    )


def concat_traces(a: Trace, b: Trace) -> Trace:
    """Play ``b`` after ``a`` (time-shifted by ``a.duration``).

    Useful for splicing regimes, e.g. a normal week followed by a
    flash-crowd week, to study how the daily retraining reacts.
    """
    catalog, views, friends, id_offset, _ = _merge_catalogs(a, b)

    b_acc = b.accesses.copy()
    b_acc["object_id"] += id_offset
    b_acc["timestamp"] += a.duration
    merged = np.concatenate([a.accesses, b_acc]).view(ACCESS_DTYPE)
    # b's upload times shift with its accesses so ages stay consistent.
    catalog["upload_time"][a.catalog.shape[0]:] += a.duration

    viral = None
    if a.viral_mask is not None or b.viral_mask is not None:
        va = a.viral_mask if a.viral_mask is not None else np.zeros(a.n_objects, bool)
        vb = b.viral_mask if b.viral_mask is not None else np.zeros(b.n_objects, bool)
        viral = np.concatenate([va, vb])

    return Trace(
        accesses=np.ascontiguousarray(merged),
        catalog=catalog,
        owner_active_friends=friends,
        owner_avg_views=views,
        duration=a.duration + b.duration,
        viral_mask=viral,
    )


def scale_rate(trace: Trace, factor: float) -> Trace:
    """Compress (or stretch) the timeline by ``factor``.

    ``factor = 2`` means the same requests arrive twice as fast (duration
    halves); object sizes and ordering are untouched.  Upload times scale
    with the timeline so ages stay proportionate.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    accesses = trace.accesses.copy()
    accesses["timestamp"] /= factor
    catalog = trace.catalog.copy()
    catalog["upload_time"] /= factor
    return Trace(
        accesses=accesses,
        catalog=catalog,
        owner_active_friends=trace.owner_active_friends,
        owner_avg_views=trace.owner_avg_views,
        duration=trace.duration / factor,
        viral_mask=trace.viral_mask,
    )
