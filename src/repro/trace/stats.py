"""Trace statistics: the §2.2 numbers and the Fig.-3 type histogram."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.catalog import PHOTO_TYPES
from repro.trace.records import Trace

__all__ = ["TraceStats", "compute_stats", "type_request_histogram"]


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics mirroring the paper's §2.2 trace analysis."""

    n_accesses: int
    n_objects: int
    mean_accesses_per_object: float
    one_time_object_fraction: float   # paper: 61.5 %
    one_time_access_fraction: float   # share of accesses that touch one-time objects
    hit_rate_cap: float               # paper: ≈74.5 % (1 − N/A)
    footprint_bytes: int
    mean_object_size: float
    diurnal_peak_hour: int
    diurnal_trough_hour: int

    def summary(self) -> str:
        return (
            f"accesses={self.n_accesses:,}  objects={self.n_objects:,}  "
            f"mean acc/obj={self.mean_accesses_per_object:.2f}\n"
            f"one-time objects: {100 * self.one_time_object_fraction:.1f}%  "
            f"one-time accesses: {100 * self.one_time_access_fraction:.1f}%  "
            f"hit-rate cap: {100 * self.hit_rate_cap:.1f}%\n"
            f"footprint: {self.footprint_bytes / 2**30:.3f} GiB  "
            f"mean size: {self.mean_object_size / 1024:.1f} KiB  "
            f"peak hour: {self.diurnal_peak_hour}:00  "
            f"trough hour: {self.diurnal_trough_hour}:00"
        )


def compute_stats(trace: Trace) -> TraceStats:
    """One vectorised pass over the trace."""
    counts = trace.access_counts()
    accessed = counts > 0
    n_objects = int(accessed.sum())
    n_accesses = trace.n_accesses
    one_time = counts == 1

    hours = ((trace.timestamps % 86400.0) / 3600.0).astype(np.int64)
    per_hour = np.bincount(hours, minlength=24)

    return TraceStats(
        n_accesses=n_accesses,
        n_objects=n_objects,
        mean_accesses_per_object=n_accesses / n_objects,
        one_time_object_fraction=float(one_time.sum() / n_objects),
        one_time_access_fraction=float(one_time.sum() / n_accesses),
        hit_rate_cap=1.0 - n_objects / n_accesses,
        footprint_bytes=trace.footprint_bytes,
        mean_object_size=trace.mean_object_size(),
        diurnal_peak_hour=int(np.argmax(per_hour)),
        diurnal_trough_hour=int(np.argmin(per_hour)),
    )


def type_request_histogram(trace: Trace) -> dict[str, float]:
    """Share of requests per photo type — the Fig.-3 distribution."""
    types = trace.catalog["photo_type"][trace.object_ids]
    counts = np.bincount(types, minlength=len(PHOTO_TYPES))
    shares = counts / counts.sum()
    return {name: float(shares[i]) for i, name in enumerate(PHOTO_TYPES)}
