"""Trace schema: structured arrays for accesses and the photo catalog.

Structured NumPy arrays keep the whole trace in two contiguous buffers, so
feature extraction, labelling and statistics are single vectorised passes
(the HPC guideline: columnar data, no per-record Python objects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ACCESS_DTYPE",
    "CATALOG_DTYPE",
    "TRACE_COLUMNS",
    "Trace",
    "trace_pickle_count",
    "reset_trace_pickle_count",
]

#: Columns every trace carries, in :meth:`Trace.column_arrays` order.
TRACE_COLUMNS = (
    "accesses",
    "catalog",
    "owner_active_friends",
    "owner_avg_views",
)

# Serialisation telemetry: every pickle of a Trace bumps this counter in the
# *pickling* process.  The shared-memory grid path is supposed to ship only a
# compact handle to workers, so tests assert the counter stays at zero across
# a parallel precompute (spawn serialises in the parent, where the test runs).
_PICKLE_COUNT = 0


def trace_pickle_count() -> int:
    """Number of Trace pickles performed by this process since last reset."""
    return _PICKLE_COUNT


def reset_trace_pickle_count() -> None:
    global _PICKLE_COUNT
    _PICKLE_COUNT = 0


def _rebuild_trace(accesses, catalog, active_friends, avg_views, duration, viral):
    return Trace(
        accesses=accesses,
        catalog=catalog,
        owner_active_friends=active_friends,
        owner_avg_views=avg_views,
        duration=duration,
        viral_mask=viral,
    )

#: One row per request, sorted by ``timestamp``.
ACCESS_DTYPE = np.dtype(
    [
        ("timestamp", np.float64),   # seconds since trace start
        ("object_id", np.int64),     # index into the catalog
        ("terminal", np.int8),       # 0 = PC, 1 = mobile (§3.2.3)
    ]
)

#: One row per distinct photo; ``object_id`` is the row index.
CATALOG_DTYPE = np.dtype(
    [
        ("size", np.int64),          # bytes
        ("photo_type", np.int8),     # 0..11 ≙ a0,a5,b0,b5,c0,c5,m0,m5,o0,o5,l0,l5
        ("owner_id", np.int64),
        ("upload_time", np.float64), # seconds; negative = uploaded pre-trace
    ]
)


@dataclass
class Trace:
    """A synthesised (or re-loaded) access trace.

    Attributes
    ----------
    accesses:
        ``ACCESS_DTYPE`` array sorted by timestamp.
    catalog:
        ``CATALOG_DTYPE`` array; row *i* describes object id *i*.
    owner_active_friends / owner_avg_views:
        Per-owner social features (§3.2.1), indexed by ``owner_id``.  These
        are the *observable* production statistics, i.e. noisy proxies of
        the ground-truth popularity that drives re-accesses.
    duration:
        Trace length in seconds.
    """

    accesses: np.ndarray
    catalog: np.ndarray
    owner_active_friends: np.ndarray
    owner_avg_views: np.ndarray
    duration: float
    #: Optional per-object flag marking flash-crowd (viral) photos, set by
    #: the generator's viral extension; None for ordinary traces.
    viral_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.accesses.dtype != ACCESS_DTYPE:
            raise TypeError("accesses must use ACCESS_DTYPE")
        if self.catalog.dtype != CATALOG_DTYPE:
            raise TypeError("catalog must use CATALOG_DTYPE")
        if self.accesses.shape[0] == 0:
            raise ValueError("trace has no accesses")
        ts = self.accesses["timestamp"]
        if (np.diff(ts) < 0).any():
            raise ValueError("accesses must be sorted by timestamp")
        oid = self.accesses["object_id"]
        if oid.min() < 0 or oid.max() >= self.catalog.shape[0]:
            raise ValueError("object_id out of catalog range")
        n_owner = self.owner_avg_views.shape[0]
        if self.owner_active_friends.shape[0] != n_owner:
            raise ValueError("owner feature arrays disagree on owner count")
        if self.catalog["owner_id"].max(initial=-1) >= n_owner:
            raise ValueError("owner_id out of range")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.viral_mask is not None and self.viral_mask.shape != (
            self.catalog.shape[0],
        ):
            raise ValueError("viral_mask must have one flag per catalog object")

    def __reduce__(self):
        # Explicit reconstruction keeps the payload to the five canonical
        # fields: the ad-hoc instance state (notably the memoised
        # ``SegmentPlan`` attached by ``SegmentPlan.for_trace``, whose
        # per-capacity batch lists dwarf the trace itself) must never ride
        # along to worker processes.  Also counts pickles for the
        # no-per-task-serialisation tests.
        global _PICKLE_COUNT
        _PICKLE_COUNT += 1
        return (
            _rebuild_trace,
            (
                self.accesses,
                self.catalog,
                self.owner_active_friends,
                self.owner_avg_views,
                self.duration,
                self.viral_mask,
            ),
        )

    # --------------------------------------------------- columnar round-trip

    def column_arrays(self) -> dict:
        """The trace's columnar arrays, keyed by canonical column name.

        The mapping contains :data:`TRACE_COLUMNS` always and
        ``"viral_mask"`` when present; together with ``duration`` it is the
        complete round-trip state — ``from_column_arrays`` rebuilds an
        equivalent trace from it (used by the shared-memory grid workers,
        which rehydrate these columns as zero-copy views).
        """
        columns = {
            "accesses": self.accesses,
            "catalog": self.catalog,
            "owner_active_friends": self.owner_active_friends,
            "owner_avg_views": self.owner_avg_views,
        }
        if self.viral_mask is not None:
            columns["viral_mask"] = self.viral_mask
        return columns

    @classmethod
    def from_column_arrays(cls, columns: dict, duration: float) -> "Trace":
        """Rebuild a trace from :meth:`column_arrays` output.

        Arrays are adopted as-is (no copies), so views into shared memory
        stay zero-copy.  Validation runs as usual via ``__post_init__``.
        """
        missing = [c for c in TRACE_COLUMNS if c not in columns]
        if missing:
            raise ValueError(f"missing trace columns: {missing}")
        return cls(
            accesses=columns["accesses"],
            catalog=columns["catalog"],
            owner_active_friends=columns["owner_active_friends"],
            owner_avg_views=columns["owner_avg_views"],
            duration=duration,
            viral_mask=columns.get("viral_mask"),
        )

    # ------------------------------------------------------------- helpers

    @property
    def n_accesses(self) -> int:
        return int(self.accesses.shape[0])

    @property
    def n_objects(self) -> int:
        return int(self.catalog.shape[0])

    @property
    def object_ids(self) -> np.ndarray:
        return self.accesses["object_id"]

    @property
    def timestamps(self) -> np.ndarray:
        return self.accesses["timestamp"]

    @property
    def sizes(self) -> np.ndarray:
        """Per-access object size (bytes)."""
        return self.catalog["size"][self.accesses["object_id"]]

    @property
    def footprint_bytes(self) -> int:
        """Sum of sizes of objects that appear in the trace at least once."""
        seen = np.unique(self.accesses["object_id"])
        return int(self.catalog["size"][seen].sum())

    def mean_object_size(self) -> float:
        seen = np.unique(self.accesses["object_id"])
        return float(self.catalog["size"][seen].mean())

    def access_counts(self) -> np.ndarray:
        """Number of accesses per catalog object (0 for never-accessed)."""
        return np.bincount(
            self.accesses["object_id"], minlength=self.catalog.shape[0]
        )

    def slice_time(self, t0: float, t1: float) -> "Trace":
        """Sub-trace with accesses in ``[t0, t1)`` (catalog shared)."""
        if not t0 < t1:
            raise ValueError("need t0 < t1")
        ts = self.accesses["timestamp"]
        lo, hi = np.searchsorted(ts, [t0, t1])
        if lo == hi:
            raise ValueError(f"no accesses in [{t0}, {t1})")
        return Trace(
            accesses=self.accesses[lo:hi],
            catalog=self.catalog,
            owner_active_friends=self.owner_active_friends,
            owner_avg_views=self.owner_avg_views,
            duration=self.duration,
            viral_mask=self.viral_mask,
        )
