"""Temporal popularity models: diurnal load curve and age decay.

§4.4.3: the one-time fraction *p* follows a daily cycle, highest at 05:00
and lowest at 20:00, because the active-user population (and hence re-access
probability) peaks in the evening.  §3.2.1: newer photos are more popular.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiurnalModel", "age_decay"]

DAY = 86400.0


@dataclass(frozen=True)
class DiurnalModel:
    """Smooth time-of-day activity profile.

    ``rate(t) ∝ 1 + amplitude · cos(2π (h − peak_hour)/24)`` — maximal at
    ``peak_hour`` (20:00 by default), minimal 12 h away (~05:00 with the
    slight skew the paper reports handled by ``trough_hour`` being implied).

    ``amplitude`` < 1 keeps the rate strictly positive.
    """

    peak_hour: float = 20.0
    amplitude: float = 0.75

    def __post_init__(self) -> None:
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError("peak_hour must be in [0, 24)")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    def rate(self, t_seconds) -> np.ndarray:
        """Relative activity at absolute time(s) ``t_seconds``."""
        h = (np.asarray(t_seconds, dtype=np.float64) % DAY) / 3600.0
        return 1.0 + self.amplitude * np.cos(
            2.0 * np.pi * (h - self.peak_hour) / 24.0
        )

    def sample_time_of_day(
        self, n: int, rng: np.random.Generator, *, flatness: float = 0.0
    ) -> np.ndarray:
        """Draw ``n`` seconds-of-day from the diurnal density.

        ``flatness`` ∈ [0, 1] interpolates toward the uniform distribution —
        one-time accesses are drawn flatter than re-accesses, which is what
        makes the access-hour feature informative (§3.2.1) and produces the
        05:00/20:00 cycle of *p* (§4.4.3).
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        if not 0.0 <= flatness <= 1.0:
            raise ValueError("flatness must be in [0, 1]")
        amp = self.amplitude * (1.0 - flatness)
        # Rejection sampling against the cosine density; acceptance
        # probability is 1/(1+amp) ≥ 0.53, so a small oversample suffices.
        out = np.empty(n)
        filled = 0
        while filled < n:
            need = n - filled
            cand = rng.uniform(0.0, DAY, size=int(need * (1 + amp) * 1.2) + 8)
            h = cand / 3600.0
            dens = 1.0 + amp * np.cos(2.0 * np.pi * (h - self.peak_hour) / 24.0)
            keep = cand[rng.uniform(0.0, 1.0 + amp, size=cand.shape[0]) < dens]
            take = min(keep.shape[0], need)
            out[filled : filled + take] = keep[:take]
            filled += take
        return out


def age_decay(age_seconds, *, half_life: float = 7.0 * DAY) -> np.ndarray:
    """Relative popularity multiplier for a photo of the given age.

    Power-law-ish decay implemented as ``1 / (1 + age/half_life)`` — at one
    half-life popularity halves; very old photos keep a small tail (they do
    still get re-visited occasionally).
    """
    if half_life <= 0:
        raise ValueError("half_life must be positive")
    age = np.maximum(np.asarray(age_seconds, dtype=np.float64), 0.0)
    return 1.0 / (1.0 + age / half_life)
