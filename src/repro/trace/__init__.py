"""Synthetic Tencent QQPhoto workload (substitute for the proprietary trace).

The paper's evaluation trace — 9 days of QQ photo-album accesses — is not
public.  This package synthesises a workload that reproduces every statistic
the paper publishes about it (see DESIGN.md §2 and §6):

* ~61.5 % of objects accessed exactly once (§2.2),
* mean ≈ 3.95 accesses/object, i.e. an all-fits hit-rate cap of ≈ 74.5 %,
* twelve photo types with the Fig.-3 request skew (``l5`` ≈ 45 %),
* diurnal load peaking at 20:00 with a 05:00 trough (§4.4.3),
* photo-age popularity decay and owner-popularity correlation (§3.2.1),

and — crucially for the ML experiments — generates the *labels* (future
re-access) from the same latent variables that the *features* observe, so a
classifier can reach the paper's ≈80 % precision without information leaks.
"""

from repro.trace.records import Trace, ACCESS_DTYPE, CATALOG_DTYPE
from repro.trace.owners import OwnerModel, generate_owners
from repro.trace.catalog import (
    PHOTO_TYPES,
    PHOTO_TYPE_REQUEST_SHARE,
    generate_catalog,
)
from repro.trace.popularity import DiurnalModel
from repro.trace.generator import WorkloadConfig, generate_trace
from repro.trace.sampler import sample_objects
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.mixer import concat_traces, interleave_traces, scale_rate
from repro.trace.analysis import (
    ZipfFit,
    one_time_share_by_hour,
    popularity_zipf_fit,
    reuse_interval_stats,
    stack_distance_profile,
)

__all__ = [
    "Trace",
    "ACCESS_DTYPE",
    "CATALOG_DTYPE",
    "OwnerModel",
    "generate_owners",
    "PHOTO_TYPES",
    "PHOTO_TYPE_REQUEST_SHARE",
    "generate_catalog",
    "DiurnalModel",
    "WorkloadConfig",
    "generate_trace",
    "sample_objects",
    "TraceStats",
    "compute_stats",
    "concat_traces",
    "interleave_traces",
    "scale_rate",
    "ZipfFit",
    "one_time_share_by_hour",
    "popularity_zipf_fit",
    "reuse_interval_stats",
    "stack_distance_profile",
]
