"""Trace persistence: compressed NPZ (native) and CSV (interchange).

NPZ keeps the structured arrays intact and round-trips exactly; CSV exports
one row per access joined with its catalog columns, for inspection or reuse
by external tools.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.trace.records import ACCESS_DTYPE, CATALOG_DTYPE, Trace

__all__ = ["save_trace", "load_trace", "export_csv"]

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace to ``path`` (``.npz``)."""
    extra = {}
    if trace.viral_mask is not None:
        extra["viral_mask"] = trace.viral_mask
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        accesses=trace.accesses,
        catalog=trace.catalog,
        owner_active_friends=trace.owner_active_friends,
        owner_avg_views=trace.owner_avg_views,
        duration=np.float64(trace.duration),
        **extra,
    )


def load_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        return Trace(
            accesses=np.ascontiguousarray(data["accesses"], dtype=ACCESS_DTYPE),
            catalog=np.ascontiguousarray(data["catalog"], dtype=CATALOG_DTYPE),
            owner_active_friends=data["owner_active_friends"],
            owner_avg_views=data["owner_avg_views"],
            duration=float(data["duration"]),
            viral_mask=data["viral_mask"] if "viral_mask" in data else None,
        )


def export_csv(trace: Trace, path: str | Path, *, limit: int | None = None) -> int:
    """Export accesses (joined with catalog columns) as CSV.

    Returns the number of rows written.  ``limit`` truncates the export for
    quick inspection of huge traces.
    """
    n = trace.n_accesses if limit is None else min(limit, trace.n_accesses)
    acc = trace.accesses[:n]
    cat = trace.catalog[acc["object_id"]]
    with open(Path(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "timestamp",
                "object_id",
                "terminal",
                "size",
                "photo_type",
                "owner_id",
                "upload_time",
            ]
        )
        for i in range(n):
            writer.writerow(
                [
                    f"{acc['timestamp'][i]:.3f}",
                    int(acc["object_id"][i]),
                    int(acc["terminal"][i]),
                    int(cat["size"][i]),
                    int(cat["photo_type"][i]),
                    int(cat["owner_id"][i]),
                    f"{cat['upload_time'][i]:.3f}",
                ]
            )
    return n
