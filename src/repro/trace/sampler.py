"""The paper's trace-sampling procedure (§5.1).

To make the 5.8-billion-record trace tractable, the authors (1) extract the
distinct object set L, (2) sample it 1:100 to get L', and (3) keep the
original records whose object belongs to L', in timestamp order.  The same
object-level (not record-level) sampling is reproduced here; it preserves
per-object access counts — and hence the one-time statistics — exactly.
"""

from __future__ import annotations

import numpy as np

from repro.trace.records import ACCESS_DTYPE, Trace

__all__ = ["sample_objects"]


def sample_objects(
    trace: Trace,
    rate: float = 0.01,
    *,
    rng: np.random.Generator | int | None = None,
) -> Trace:
    """Keep each distinct object independently with probability ``rate``.

    Object ids are re-densified so the sampled catalog stays contiguous.
    Raises if the sample would be empty (tiny traces + tiny rates).
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("rate must be in (0, 1]")
    rng = np.random.default_rng(rng)

    distinct = np.unique(trace.accesses["object_id"])
    keep = distinct[rng.random(distinct.shape[0]) < rate]
    if keep.shape[0] == 0:
        raise ValueError(
            f"sampling rate {rate} left no objects (trace has "
            f"{distinct.shape[0]} distinct objects)"
        )

    mask = np.isin(trace.accesses["object_id"], keep)
    kept_accesses = trace.accesses[mask]

    # Re-densify ids: old id -> position in `keep`.
    new_ids = np.searchsorted(keep, kept_accesses["object_id"])
    out = np.empty(kept_accesses.shape[0], dtype=ACCESS_DTYPE)
    out["timestamp"] = kept_accesses["timestamp"]
    out["object_id"] = new_ids
    out["terminal"] = kept_accesses["terminal"]

    return Trace(
        accesses=out,
        catalog=trace.catalog[keep],
        owner_active_friends=trace.owner_active_friends,
        owner_avg_views=trace.owner_avg_views,
        duration=trace.duration,
        viral_mask=None if trace.viral_mask is None else trace.viral_mask[keep],
    )
