"""Owner (user) population model.

§3.2.1 lists two owner-side features: *active friends* (recent interaction
partners) and *average views of the owner's photos*.  Both are observable
proxies of a latent owner popularity, which in turn drives how often the
owner's photos are re-accessed.  We model:

* latent popularity ``pop ~ LogNormal`` — a heavy-tailed audience size;
* ``avg_views`` — popularity observed through multiplicative noise (the
  production statistic is a trailing average, hence noisy);
* ``active_friends`` — Poisson with mean proportional to popularity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OwnerModel", "generate_owners"]


@dataclass
class OwnerModel:
    """A generated owner population.

    ``popularity`` is the ground truth used by the trace generator;
    ``avg_views``/``active_friends`` are what the classifier gets to see.
    """

    popularity: np.ndarray      # latent, mean ≈ 1
    avg_views: np.ndarray       # observable proxy (float)
    active_friends: np.ndarray  # observable proxy (int)

    @property
    def n_owners(self) -> int:
        return int(self.popularity.shape[0])


def generate_owners(
    n_owners: int,
    rng: np.random.Generator,
    *,
    sigma: float = 1.0,
    views_noise: float = 0.35,
    friends_scale: float = 25.0,
) -> OwnerModel:
    """Draw an owner population.

    Parameters
    ----------
    n_owners:
        Population size.
    sigma:
        Log-normal shape of the latent popularity (1.0 gives a realistic
        heavy tail: a few celebrities, many quiet users).
    views_noise:
        Log-space standard deviation of the ``avg_views`` observation.
    friends_scale:
        Mean active-friends count of an average-popularity owner.
    """
    if n_owners < 1:
        raise ValueError("n_owners must be >= 1")
    if sigma <= 0 or views_noise < 0 or friends_scale <= 0:
        raise ValueError("invalid owner-model parameters")
    # mean-1 lognormal: exp(N(-sigma^2/2, sigma))
    popularity = rng.lognormal(-0.5 * sigma * sigma, sigma, size=n_owners)
    avg_views = popularity * rng.lognormal(
        -0.5 * views_noise * views_noise, views_noise, size=n_owners
    )
    active_friends = rng.poisson(friends_scale * popularity).astype(np.int64)
    return OwnerModel(
        popularity=popularity,
        avg_views=avg_views,
        active_friends=active_friends,
    )
