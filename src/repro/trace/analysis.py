"""Workload analysis: the toolkit behind a §2-style trace study.

Functions here answer the questions the paper's motivation section asks of
its production trace:

* :func:`popularity_zipf_fit` — is request popularity Zipf-like (the paper
  cites Breslau et al. for this), and with what exponent?
* :func:`stack_distance_profile` — the LRU hit-rate-vs-capacity curve in
  one pass (unit-size approximation), i.e. Fig. 2 without simulation;
* :func:`reuse_interval_stats` — how quickly re-accesses arrive (what makes
  small caches work);
* :func:`one_time_share_by_hour` — the §4.4.3 diurnal cycle of *p*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.belady import compute_next_use
from repro.trace.records import Trace

__all__ = [
    "ZipfFit",
    "popularity_zipf_fit",
    "stack_distance_profile",
    "reuse_interval_stats",
    "one_time_share_by_hour",
]


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of log(count) vs log(rank)."""

    exponent: float        # Zipf's alpha (positive = heavy head)
    r_squared: float
    n_objects: int
    top_1pct_share: float  # request share of the most popular 1%

    @property
    def is_zipf_like(self) -> bool:
        """Rule of thumb: good log-log linearity and a real exponent."""
        return self.r_squared > 0.8 and self.exponent > 0.3


def popularity_zipf_fit(trace: Trace, *, min_rank: int = 1) -> ZipfFit:
    """Fit ``count ∝ rank^(−alpha)`` over the popularity distribution.

    ``min_rank`` skips the first ranks, where real traces routinely deviate
    from the power law (the paper's cited web-caching work does the same).
    """
    counts = trace.access_counts()
    counts = np.sort(counts[counts > 0])[::-1]
    if counts.shape[0] < min_rank + 10:
        raise ValueError("too few objects for a meaningful fit")
    ranks = np.arange(1, counts.shape[0] + 1)
    sel = slice(min_rank - 1, None)
    x = np.log(ranks[sel])
    y = np.log(counts[sel].astype(np.float64))
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    top = max(1, counts.shape[0] // 100)
    return ZipfFit(
        exponent=float(-slope),
        r_squared=r2,
        n_objects=int(counts.shape[0]),
        top_1pct_share=float(counts[:top].sum() / counts.sum()),
    )


def stack_distance_profile(
    trace: Trace, capacities: np.ndarray | list[int]
) -> np.ndarray:
    """LRU hit rate at each capacity (in *objects*), one O(n log n) pass.

    Classic Mattson stack analysis with a Fenwick tree: the LRU stack
    distance of each access is the number of distinct objects seen since
    its previous access; it hits in any LRU cache of at least that many
    (unit-size) slots.  Exact for unit sizes; a good approximation for the
    photo workload's narrow size distribution.
    """
    capacities = np.asarray(capacities, dtype=np.int64)
    if capacities.ndim != 1 or capacities.shape[0] == 0:
        raise ValueError("capacities must be a non-empty 1-D array")
    if (capacities <= 0).any():
        raise ValueError("capacities must be positive")

    oids = trace.object_ids
    n = oids.shape[0]
    # Fenwick (BIT) over access positions marking "most recent occurrence".
    tree = np.zeros(n + 1, dtype=np.int64)

    def bit_add(i: int, delta: int) -> None:
        i += 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def bit_sum(i: int) -> int:  # prefix sum over [0, i]
        i += 1
        s = 0
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return s

    last_pos: dict[int, int] = {}
    distances = np.empty(n, dtype=np.int64)
    for i, oid in enumerate(oids.tolist()):
        prev = last_pos.get(oid)
        if prev is None:
            distances[i] = np.iinfo(np.int64).max  # cold miss
        else:
            # Distinct objects touched in (prev, i) = marks in that range.
            distances[i] = bit_sum(i - 1) - bit_sum(prev)
            bit_add(prev, -1)
        bit_add(i, +1)
        last_pos[oid] = i

    finite = np.sort(distances[distances != np.iinfo(np.int64).max])
    # An access with stack distance d (distinct objects between reuses)
    # hits iff the cache holds d + 1 objects (itself plus the d intruders).
    hits_at = np.searchsorted(finite, capacities - 1, side="right")
    return hits_at / n


@dataclass(frozen=True)
class ReuseIntervalStats:
    median_seconds: float
    p90_seconds: float
    within_hour_fraction: float
    within_day_fraction: float


def reuse_interval_stats(trace: Trace) -> ReuseIntervalStats:
    """Time gaps between consecutive accesses to the same object."""
    nxt = compute_next_use(trace.object_ids)
    has_next = nxt != np.iinfo(np.int64).max
    if not has_next.any():
        raise ValueError("trace has no re-accesses")
    ts = trace.timestamps
    gaps = ts[nxt[has_next]] - ts[has_next]
    return ReuseIntervalStats(
        median_seconds=float(np.median(gaps)),
        p90_seconds=float(np.percentile(gaps, 90)),
        within_hour_fraction=float(np.mean(gaps <= 3600.0)),
        within_day_fraction=float(np.mean(gaps <= 86400.0)),
    )


def one_time_share_by_hour(trace: Trace) -> np.ndarray:
    """Fraction of accesses touching exactly-once objects, per hour of day.

    The paper reports this share peaking at ~05:00 and bottoming at ~20:00
    (§4.4.3), which is what schedules the daily retraining.
    """
    counts = trace.access_counts()
    is_one_time = counts[trace.object_ids] == 1
    hours = ((trace.timestamps % 86400.0) / 3600.0).astype(np.int64)
    share = np.zeros(24)
    for h in range(24):
        mask = hours == h
        share[h] = is_one_time[mask].mean() if mask.any() else 0.0
    return share
