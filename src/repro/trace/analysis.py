"""Workload analysis: the toolkit behind a §2-style trace study.

Functions here answer the questions the paper's motivation section asks of
its production trace:

* :func:`popularity_zipf_fit` — is request popularity Zipf-like (the paper
  cites Breslau et al. for this), and with what exponent?
* :func:`stack_distance_profile` — the LRU hit-rate-vs-capacity curve in
  one pass (unit-size approximation), i.e. Fig. 2 without simulation;
* :func:`reuse_interval_stats` — how quickly re-accesses arrive (what makes
  small caches work);
* :func:`one_time_share_by_hour` — the §4.4.3 diurnal cycle of *p*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.belady import compute_next_use
from repro.trace.records import Trace

__all__ = [
    "COLD_MISS",
    "ZipfFit",
    "popularity_zipf_fit",
    "stack_distances",
    "stack_distance_profile",
    "reuse_interval_stats",
    "one_time_share_by_hour",
]

#: Sentinel distance for an object's first access (cold miss): no LRU cache,
#: however large, can serve it.
COLD_MISS = np.iinfo(np.int64).max


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of log(count) vs log(rank)."""

    exponent: float        # Zipf's alpha (positive = heavy head)
    r_squared: float
    n_objects: int
    top_1pct_share: float  # request share of the most popular 1%

    @property
    def is_zipf_like(self) -> bool:
        """Rule of thumb: good log-log linearity and a real exponent."""
        return self.r_squared > 0.8 and self.exponent > 0.3


def popularity_zipf_fit(trace: Trace, *, min_rank: int = 1) -> ZipfFit:
    """Fit ``count ∝ rank^(−alpha)`` over the popularity distribution.

    ``min_rank`` skips the first ranks, where real traces routinely deviate
    from the power law (the paper's cited web-caching work does the same).
    """
    counts = trace.access_counts()
    counts = np.sort(counts[counts > 0])[::-1]
    if counts.shape[0] < min_rank + 10:
        raise ValueError("too few objects for a meaningful fit")
    ranks = np.arange(1, counts.shape[0] + 1)
    sel = slice(min_rank - 1, None)
    x = np.log(ranks[sel])
    y = np.log(counts[sel].astype(np.float64))
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    top = max(1, counts.shape[0] // 100)
    return ZipfFit(
        exponent=float(-slope),
        r_squared=r2,
        n_objects=int(counts.shape[0]),
        top_1pct_share=float(counts[:top].sum() / counts.sum()),
    )


def stack_distances(
    object_ids: np.ndarray, *, weights: np.ndarray | None = None
) -> np.ndarray:
    """Per-access Mattson stack distance in one O(n log n) Fenwick pass.

    The stack distance of access *i* is the total ``weight`` of *distinct*
    objects touched strictly between this access and the previous access of
    the same object (each distinct object counted once, at its most recent
    occurrence).  First accesses get :data:`COLD_MISS`.

    With ``weights=None`` every object weighs 1 — the classic unit-size
    distance behind :func:`stack_distance_profile`.  With per-access byte
    weights (``trace.sizes``) the result is the *byte-weighted* distance
    used by :class:`repro.cache.segments.SegmentPlan` to prove hits: an
    access re-touching an object whose byte distance plus own size fits the
    capacity is a guaranteed LRU hit when every miss is admitted.
    """
    oids = np.asarray(object_ids)
    n = oids.shape[0]
    if weights is None:
        w_list = [1] * n
    else:
        weights = np.asarray(weights)
        if weights.shape != oids.shape:
            raise ValueError("weights must align with object_ids")
        w_list = weights.tolist()

    # Fenwick (BIT) over access positions marking "most recent occurrence"
    # of each object with that object's weight.  Plain-list arithmetic is
    # ~3× faster than ndarray scalar indexing in this loop.
    tree = [0] * (n + 1)
    last_pos: dict[int, int] = {}
    distances = np.empty(n, dtype=np.int64)
    oid_list = oids.tolist()
    for i in range(n):
        oid = oid_list[i]
        prev = last_pos.get(oid)
        if prev is None:
            distances[i] = COLD_MISS
        else:
            # Distinct weight touched in (prev, i) = marks in that range:
            # prefix_sum(i - 1) - prefix_sum(prev).
            s = 0
            j = i  # == (i - 1) + 1
            while j > 0:
                s += tree[j]
                j -= j & (-j)
            j = prev + 1
            while j > 0:
                s -= tree[j]
                j -= j & (-j)
            distances[i] = s
            # Clear the previous-occurrence mark.
            w = w_list[prev]
            j = prev + 1
            while j <= n:
                tree[j] -= w
                j += j & (-j)
        w = w_list[i]
        j = i + 1
        while j <= n:
            tree[j] += w
            j += j & (-j)
        last_pos[oid] = i
    return distances


def stack_distance_profile(
    trace: Trace, capacities: np.ndarray | list[int]
) -> np.ndarray:
    """LRU hit rate at each capacity (in *objects*), one O(n log n) pass.

    Classic Mattson stack analysis via :func:`stack_distances`: the LRU
    stack distance of each access is the number of distinct objects seen
    since its previous access; it hits in any LRU cache of at least that
    many (unit-size) slots.  Exact for unit sizes; a good approximation for
    the photo workload's narrow size distribution.
    """
    capacities = np.asarray(capacities, dtype=np.int64)
    if capacities.ndim != 1 or capacities.shape[0] == 0:
        raise ValueError("capacities must be a non-empty 1-D array")
    if (capacities <= 0).any():
        raise ValueError("capacities must be positive")

    distances = stack_distances(trace.object_ids)
    finite = np.sort(distances[distances != COLD_MISS])
    # An access with stack distance d (distinct objects between reuses)
    # hits iff the cache holds d + 1 objects (itself plus the d intruders).
    hits_at = np.searchsorted(finite, capacities - 1, side="right")
    return hits_at / trace.n_accesses


@dataclass(frozen=True)
class ReuseIntervalStats:
    median_seconds: float
    p90_seconds: float
    within_hour_fraction: float
    within_day_fraction: float


def reuse_interval_stats(trace: Trace) -> ReuseIntervalStats:
    """Time gaps between consecutive accesses to the same object."""
    nxt = compute_next_use(trace.object_ids)
    has_next = nxt != np.iinfo(np.int64).max
    if not has_next.any():
        raise ValueError("trace has no re-accesses")
    ts = trace.timestamps
    gaps = ts[nxt[has_next]] - ts[has_next]
    return ReuseIntervalStats(
        median_seconds=float(np.median(gaps)),
        p90_seconds=float(np.percentile(gaps, 90)),
        within_hour_fraction=float(np.mean(gaps <= 3600.0)),
        within_day_fraction=float(np.mean(gaps <= 86400.0)),
    )


def one_time_share_by_hour(trace: Trace) -> np.ndarray:
    """Fraction of accesses touching exactly-once objects, per hour of day.

    The paper reports this share peaking at ~05:00 and bottoming at ~20:00
    (§4.4.3), which is what schedules the daily retraining.
    """
    counts = trace.access_counts()
    is_one_time = counts[trace.object_ids] == 1
    hours = ((trace.timestamps % 86400.0) / 3600.0).astype(np.int64)
    share = np.zeros(24)
    for h in range(24):
        mask = hours == h
        share[h] = is_one_time[mask].mean() if mask.any() else 0.0
    return share
