"""Vectorised synthesis of the QQPhoto-like access trace.

Generative model (DESIGN.md §6)
-------------------------------
1.  **Owners** get a heavy-tailed latent popularity (``repro.trace.owners``).
2.  **Photos** get a type, size, owner and upload time
    (``repro.trace.catalog``).
3.  Each photo's **re-access propensity** ``z`` combines the owner's
    popularity, its type's popularity multiplier and its age at trace start
    (plus idiosyncratic noise).  A logistic link maps ``z`` to the
    probability of being *cold* (accessed exactly once); the intercept is
    solved by bisection so the cold fraction matches the paper's 61.5 %.
4.  **Hot photos** draw a Pareto-tailed number of extra accesses scaled by
    ``z``, calibrated so the overall mean accesses/object matches the
    paper's ≈3.95 (⇒ all-fits hit-rate cap ≈ 74.5 %, §2.2).
5.  **Timing**: each photo's accesses form a *burst* — a window starting
    shortly after upload (or anywhere in the trace for pre-trace photos)
    with Beta-distributed offsets — giving the temporal locality real photo
    workloads show (Crane & Sornette 2008).  Burst *starts* are re-aligned
    to the diurnal profile (a rigid per-object shift, preserving
    within-burst gaps), flatter for cold objects so that the one-time share
    peaks at 05:00 and dips at 20:00 (§4.4.3).

Because the features the classifier sees (owner average views, photo type,
age, hour, …) are noisy views of the same latent variables that decide
cold/hot, prediction is learnable but not trivially so — matching the
paper's ≈86 % accuracy operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.trace.catalog import (
    generate_catalog,
    type_popularity_array,
)
from repro.trace.owners import generate_owners
from repro.trace.popularity import DAY, DiurnalModel, age_decay
from repro.trace.records import ACCESS_DTYPE, Trace

__all__ = ["WorkloadConfig", "generate_trace"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic workload; defaults reproduce the paper's stats.

    Parameters
    ----------
    n_objects:
        Distinct photos in the trace.
    days:
        Trace length (the paper's log spans 9 days).
    mean_accesses:
        Target mean accesses/object.  The paper's totals (5.86 G accesses /
        1.48 G objects) give 3.95, capping the all-fits hit rate at ≈74.5 %.
    one_time_fraction:
        Fraction of objects accessed exactly once (61.5 % in §2.2).
    propensity_weight:
        Strength of the feature → cold-probability link (higher = easier
        classification problem).
    propensity_noise:
        Idiosyncratic log-propensity noise (higher = harder problem).
    extra_tail_alpha:
        Pareto shape of the extra-access count for hot photos (lower =
        heavier tail = more skewed request popularity).
    type_drift_sigma:
        Daily random-walk step of each photo type's log-propensity — the
        concept drift that §4.4.3's daily retraining exists to track.
        0 disables drift (stationary workload).
    viral_fraction / viral_boost / viral_onset_delay:
        Flash-crowd extension (off by default).  A ``viral_fraction`` of
        *hot* photos goes viral: their access count is multiplied by
        ``viral_boost`` and their burst starts ``viral_onset_delay``
        seconds after upload instead of promptly.  Viral photos are the
        admission filter's worst case — at onset they look exactly like
        cold photos — and the scenario the §4.4.2 history table exists to
        rescue.
    burst_delay / burst_length:
        Mean seconds from upload to burst start, and mean burst length.
    cold_hour_flatness:
        How much flatter the time-of-day profile of one-time accesses is
        (drives the §4.4.3 diurnal cycle of *p*).
    mobile_base / mobile_evening_boost:
        Terminal-type model: P(mobile) with an evening bump.
    """

    n_objects: int = 100_000
    days: float = 9.0
    mean_accesses: float = 3.95
    one_time_fraction: float = 0.615
    owners_per_object: float = 0.05
    propensity_weight: float = 3.5
    propensity_noise: float = 0.4
    extra_tail_alpha: float = 1.7
    type_drift_sigma: float = 0.35
    viral_fraction: float = 0.0
    viral_boost: float = 20.0
    viral_onset_delay: float = 1.0 * DAY
    burst_delay: float = 2.0 * 3600.0
    burst_length: float = 10.0 * 3600.0
    burst_sigma: float = 1.3
    cold_hour_flatness: float = 0.85
    mobile_base: float = 0.55
    mobile_evening_boost: float = 0.25
    diurnal: DiurnalModel = field(default_factory=DiurnalModel)
    pre_trace_fraction: float = 0.35
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_objects < 2:
            raise ValueError("n_objects must be >= 2")
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.mean_accesses < 1.0:
            raise ValueError("mean_accesses must be >= 1 (every object is accessed)")
        if not 0.0 <= self.one_time_fraction < 1.0:
            raise ValueError("one_time_fraction must be in [0, 1)")
        if self.one_time_fraction > 0 and self.mean_accesses <= 1.0:
            raise ValueError("mean_accesses must exceed 1 when hot objects exist")
        if self.extra_tail_alpha <= 1.0:
            raise ValueError("extra_tail_alpha must be > 1 (finite mean)")
        if not 0.0 <= self.cold_hour_flatness <= 1.0:
            raise ValueError("cold_hour_flatness must be in [0, 1]")
        if not 0.0 <= self.viral_fraction < 1.0:
            raise ValueError("viral_fraction must be in [0, 1)")
        if self.viral_boost < 1.0:
            raise ValueError("viral_boost must be >= 1")
        if self.viral_onset_delay < 0:
            raise ValueError("viral_onset_delay must be non-negative")
        if not 0.0 <= self.mobile_base <= 1.0:
            raise ValueError("mobile_base must be a probability")

    @property
    def duration(self) -> float:
        return self.days * DAY

    def with_(self, **kwargs) -> "WorkloadConfig":
        """Functional update helper (frozen dataclass)."""
        return replace(self, **kwargs)


def _solve_cold_intercept(z: np.ndarray, target: float, weight: float) -> float:
    """Bisection for ``a`` such that mean σ(a − weight·z) == target."""
    lo, hi = -30.0, 30.0
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        p = 1.0 / (1.0 + np.exp(-(mid - weight * z)))
        if p.mean() < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def _diurnal_burst_shift(
    start: np.ndarray,
    cold: np.ndarray,
    cfg: WorkloadConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-object shift aligning burst starts with the diurnal profile.

    Each object's burst start keeps its *day* but gets a new second-of-day
    drawn from the diurnal density — flatter for cold (one-time) objects,
    which is what makes the one-time share peak in the early morning
    (§4.4.3).  The shift is applied rigidly to all of the object's
    accesses, so within-burst gaps (the temporal-locality structure) are
    preserved exactly.
    """
    n = start.shape[0]
    day_index = np.floor(start / DAY)
    new_sod = np.empty(n)
    n_cold = int(cold.sum())
    new_sod[cold] = cfg.diurnal.sample_time_of_day(
        n_cold, rng, flatness=cfg.cold_hour_flatness
    )
    new_sod[~cold] = cfg.diurnal.sample_time_of_day(n - n_cold, rng, flatness=0.0)
    return day_index * DAY + new_sod - start


def generate_trace(cfg: WorkloadConfig) -> Trace:
    """Synthesise a :class:`~repro.trace.records.Trace` from ``cfg``."""
    rng = np.random.default_rng(cfg.seed)
    duration = cfg.duration

    n_owners = max(1, int(cfg.n_objects * cfg.owners_per_object))
    owners = generate_owners(n_owners, rng)
    catalog = generate_catalog(
        cfg.n_objects,
        owners,
        duration,
        rng,
        pre_trace_fraction=cfg.pre_trace_fraction,
    )

    # ----------------------------------------------------------- burst times
    upload = catalog["upload_time"]
    in_trace = upload >= 0.0
    start = np.where(
        in_trace,
        upload + rng.exponential(cfg.burst_delay, size=cfg.n_objects),
        rng.uniform(0.0, duration, size=cfg.n_objects),
    )
    start = np.minimum(start, duration * 0.999)
    length = rng.lognormal(
        np.log(cfg.burst_length), cfg.burst_sigma, size=cfg.n_objects
    )
    length = np.minimum(length, duration - start)

    # ---------------------------------------------------------- propensity
    type_pop = type_popularity_array()[catalog["photo_type"]]
    owner_pop = owners.popularity[catalog["owner_id"]]
    age_at_start = np.maximum(-catalog["upload_time"], 0.0)
    z = (
        np.log(owner_pop)
        + np.log(type_pop)
        + np.log(age_decay(age_at_start))
        + rng.normal(0.0, cfg.propensity_noise, size=cfg.n_objects)
    )
    if cfg.type_drift_sigma > 0:
        # Concept drift (§4.4.3's motivation for daily retraining): each
        # photo type's popularity follows a day-granularity random walk, so
        # the feature → label relationship shifts over the trace and a
        # static classifier decays while a daily-retrained one tracks it.
        n_days = int(np.ceil(cfg.days)) + 1
        walk = np.cumsum(
            rng.normal(0.0, cfg.type_drift_sigma, size=(n_days, 12)), axis=0
        )
        burst_day = np.minimum((start // DAY).astype(np.int64), n_days - 1)
        z = z + walk[burst_day, catalog["photo_type"]]
    z = (z - z.mean()) / max(z.std(), 1e-12)

    # ------------------------------------------------------ cold/hot split
    if cfg.one_time_fraction > 0:
        a = _solve_cold_intercept(z, cfg.one_time_fraction, cfg.propensity_weight)
        p_cold = 1.0 / (1.0 + np.exp(-(a - cfg.propensity_weight * z)))
        cold = rng.random(cfg.n_objects) < p_cold
    else:
        cold = np.zeros(cfg.n_objects, dtype=bool)
    hot = ~cold
    n_hot = int(hot.sum())
    if n_hot == 0 and cfg.mean_accesses > 1.0:
        # Pathological draw on tiny configs: force one hot object.
        cold[np.argmax(z)] = False
        hot = ~cold
        n_hot = 1

    # -------------------------------------------- extra accesses (hot only)
    counts = np.ones(cfg.n_objects, dtype=np.int64)
    if n_hot:
        target_extra_mean = (cfg.mean_accesses - 1.0) * cfg.n_objects / n_hot
        raw = (rng.pareto(cfg.extra_tail_alpha, size=n_hot) + 1.0) * np.exp(
            0.5 * z[hot]
        )
        raw *= target_extra_mean / raw.mean()
        extra = np.maximum(np.rint(raw).astype(np.int64), 1)
        counts[hot] += extra

    # ------------------------------------------------------ viral photos
    viral = np.zeros(cfg.n_objects, dtype=bool)
    if cfg.viral_fraction > 0 and n_hot:
        hot_idx = np.nonzero(hot)[0]
        n_viral = max(1, int(round(cfg.viral_fraction * cfg.n_objects)))
        n_viral = min(n_viral, hot_idx.shape[0])
        chosen = rng.choice(hot_idx, size=n_viral, replace=False)
        viral[chosen] = True
        counts[chosen] = np.maximum(
            (counts[chosen] * cfg.viral_boost).astype(np.int64), 2
        )
        # Flash crowds erupt well after upload: delay the burst start.
        start[chosen] = np.minimum(
            np.maximum(catalog["upload_time"][chosen], 0.0)
            + rng.exponential(cfg.viral_onset_delay, size=n_viral),
            duration * 0.999,
        )
        length[chosen] = np.minimum(
            rng.lognormal(np.log(cfg.burst_length), 0.4, size=n_viral),
            duration - start[chosen],
        )

    total_accesses = int(counts.sum())

    # Shift every burst so starts follow the diurnal profile (rigid shift:
    # within-burst gaps are preserved).
    start = start + _diurnal_burst_shift(start, cold, cfg, rng)

    obj_of_access = np.repeat(np.arange(cfg.n_objects), counts)
    # First access sits at the burst start; extras spread Beta(0.7, 1.6)
    # into the burst (front-loaded — photos fade).
    offsets = rng.beta(0.7, 1.6, size=total_accesses) * length[obj_of_access]
    first_slot = np.r_[0, np.cumsum(counts)[:-1]]
    offsets[first_slot] = 0.0
    t = start[obj_of_access] + offsets
    # Bursts shifted past either end of the window wrap around rather than
    # clip (clipping piles accesses onto the first/last second, distorting
    # the hour histogram).
    outside = (t < 0.0) | (t >= duration)
    if outside.any():
        t[outside] = np.mod(t[outside], duration)

    # ------------------------------------------------------------- terminal
    hour = (t % DAY) / 3600.0
    evening = (hour >= 18.0) & (hour <= 23.0)
    p_mobile = np.clip(
        cfg.mobile_base + cfg.mobile_evening_boost * evening, 0.0, 1.0
    )
    terminal = (rng.random(total_accesses) < p_mobile).astype(np.int8)

    # ------------------------------------------------------------- assemble
    order = np.argsort(t, kind="stable")
    accesses = np.empty(total_accesses, dtype=ACCESS_DTYPE)
    accesses["timestamp"] = t[order]
    accesses["object_id"] = obj_of_access[order]
    accesses["terminal"] = terminal[order]

    return Trace(
        accesses=accesses,
        catalog=catalog,
        owner_active_friends=owners.active_friends,
        owner_avg_views=owners.avg_views,
        duration=duration,
        viral_mask=viral if viral.any() else None,
    )
